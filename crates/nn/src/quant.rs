//! Opt-in int8 weight quantization for scoring-only inference.
//!
//! A [`QuantizedLinearSnapshot`] stores a [`LinearSnapshot`]'s weight matrix
//! as one signed byte per element plus one `f32` scale **per weight row**
//! (per input feature): `w[p][j] ≈ q[p][j] · s[p]` with symmetric
//! quantization `s[p] = max_j |w[p][j]| / 127`, `q = round(w / s)` clamped
//! to `[-127, 127]`. That cuts weight bytes 4× — the lever that matters for
//! small-batch scoring, where the GEMM is bound by streaming the weight
//! matrix, not by arithmetic.
//!
//! The quantized GEMM keeps the exact-path discipline *structurally*: the
//! same i-k-j register-blocked loop, the same ascending-`p` per-lane
//! `mul_add` accumulation, the same row-block partitioning across an
//! optional [`ThreadPool`]. Results are therefore **deterministic and
//! thread-count invariant bit-for-bit** — but they are *approximate* with
//! respect to the f32 weights: quantization error is a property of the
//! weights, measured per model as max |Δ log-prob| against the exact oracle
//! (`log_prob_reference` in `passflow-core`) and surfaced to callers so the
//! trade is explicit. This module never replaces the exact path; callers
//! opt in per workload (serve `--quantized`, strength tables).

use crate::pool::ThreadPool;
use crate::snapshot::{BlockSnapshot, LinearSnapshot, NetWorkspace, ResNetSnapshot};
use crate::tensor::Tensor;
use crate::ActivationKind;

/// Largest magnitude a quantized weight may take (symmetric, no −128 so
/// the grid is symmetric around zero and negation is exact).
const QMAX: f32 = 127.0;

// ---------------------------------------------------------------------------
// Quantized linear layer
// ---------------------------------------------------------------------------

/// An int8 copy of a [`LinearSnapshot`]: per-row scales, symmetric grid.
#[derive(Clone, Debug)]
pub struct QuantizedLinearSnapshot {
    /// `in_features × out_features`, row-major — same layout the f32 kernel
    /// streams, one byte per element.
    q: Vec<i8>,
    /// One scale per weight row (input feature): `w[p][j] ≈ q[p][j] · s[p]`.
    scales: Vec<f32>,
    /// Bias kept in f32 (it is added once per output element; quantizing it
    /// would add error for no bandwidth win).
    bias: Vec<f32>,
    in_features: usize,
    out_features: usize,
}

impl QuantizedLinearSnapshot {
    /// Quantizes an f32 linear snapshot (weights to int8, bias kept f32).
    pub fn from_snapshot(snapshot: &LinearSnapshot) -> Self {
        let weight = snapshot.weight_tensor();
        let (k, n) = weight.shape();
        let w = weight.as_slice();
        let mut q = vec![0i8; k * n];
        let mut scales = vec![1.0f32; k];
        for p in 0..k {
            let row = &w[p * n..(p + 1) * n];
            let mut amax = 0.0f32;
            for &v in row {
                let mag = v.abs();
                if mag > amax {
                    amax = mag;
                }
            }
            // An all-zero row quantizes to zeros under any scale; keep 1.0
            // so the dequantized product is exactly 0.
            let scale = if amax > 0.0 { amax / QMAX } else { 1.0 };
            scales[p] = scale;
            let q_row = &mut q[p * n..(p + 1) * n];
            for (dst, &v) in q_row.iter_mut().zip(row) {
                *dst = (v / scale).round().clamp(-QMAX, QMAX) as i8;
            }
        }
        QuantizedLinearSnapshot {
            q,
            scales,
            bias: snapshot.bias_tensor().as_slice().to_vec(),
            in_features: k,
            out_features: n,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Bytes held by the quantized weights + scales + bias — ~¼ of the f32
    /// layer for any non-trivial width.
    pub fn memory_bytes(&self) -> usize {
        self.q.len()
            + std::mem::size_of_val(self.scales.as_slice())
            + std::mem::size_of_val(self.bias.as_slice())
    }

    /// The dequantized weight matrix `q[p][j] · s[p]` (diagnostics/tests).
    pub fn dequantized_weight(&self) -> Tensor {
        let mut out = Tensor::zeros(self.in_features, self.out_features);
        let slice = out.as_mut_slice();
        for p in 0..self.in_features {
            let s = self.scales[p];
            for j in 0..self.out_features {
                slice[p * self.out_features + j] = f32::from(self.q[p * self.out_features + j]) * s;
            }
        }
        out
    }

    /// Fused `out = input × (q·s) + bias`, resizing `out` as needed.
    pub fn forward_into(&self, input: &Tensor, out: &mut Tensor, pool: Option<&ThreadPool>) {
        assert_eq!(
            input.cols(),
            self.in_features,
            "quantized linear shape mismatch"
        );
        out.resize(input.rows(), self.out_features);
        qgemm(
            input.as_slice(),
            input.rows(),
            self.in_features,
            &self.scales,
            &self.q,
            self.out_features,
            &self.bias,
            out.as_mut_slice(),
            false,
            pool,
        );
    }

    /// Fused residual `out += input × (q·s) + bias` (`out` must already be
    /// `input.rows() × out_features`).
    pub fn forward_add_into(&self, input: &Tensor, out: &mut Tensor, pool: Option<&ThreadPool>) {
        assert_eq!(
            input.cols(),
            self.in_features,
            "quantized linear shape mismatch"
        );
        assert_eq!(
            out.shape(),
            (input.rows(), self.out_features),
            "quantized residual output shape mismatch"
        );
        qgemm(
            input.as_slice(),
            input.rows(),
            self.in_features,
            &self.scales,
            &self.q,
            self.out_features,
            &self.bias,
            out.as_mut_slice(),
            true,
            pool,
        );
    }
}

// ---------------------------------------------------------------------------
// Quantized GEMM
// ---------------------------------------------------------------------------

/// One quantized register tile: `R` rows × `W` columns at `(i, j)`.
///
/// Per output element: `Σ_p fma(a[i][p] · s[p], f32(q[p][j]), acc)` with `p`
/// ascending — the dequantize happens in registers, the accumulation order
/// matches the f32 kernel, and every lane is independent, so results are
/// deterministic and identical under any row partitioning.
#[inline(always)]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn qtile<const R: usize, const W: usize>(
    a: &[f32],
    scales: &[f32],
    q: &[i8],
    n: usize,
    k: usize,
    bias: &[f32],
    out: &mut [f32],
    i: usize,
    j: usize,
    accumulate: bool,
) {
    let mut acc = [[0.0f32; W]; R];
    let a_rows: [&[f32]; R] = std::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
    let mut q_off = j;
    for p in 0..k {
        let s = scales[p];
        let q_row: &[i8] = &q[q_off..q_off + W];
        let mut w = [0.0f32; W];
        for c in 0..W {
            w[c] = f32::from(q_row[c]);
        }
        for r in 0..R {
            let a_val = a_rows[r][p] * s;
            for c in 0..W {
                acc[r][c] = a_val.mul_add(w[c], acc[r][c]);
            }
        }
        q_off += n;
    }
    for r in 0..R {
        let out_row = &mut out[(i + r) * n + j..(i + r) * n + j + W];
        if accumulate {
            for c in 0..W {
                out_row[c] += acc[r][c] + bias[j + c];
            }
        } else {
            for c in 0..W {
                out_row[c] = acc[r][c] + bias[j + c];
            }
        }
    }
}

/// The explicit AVX2/FMA quantized inner tile (`x86_64` only).
///
/// Per-lane identical to the scalar [`qtile`]: the weight byte is widened to
/// f32 in registers, `a·s` is one scalar multiply, and the accumulation is
/// one `vfmadd` per `(row, column, p)` with `p` ascending — so scalar and
/// SIMD quantized tiles agree to 0 ULP (asserted in tests on AVX2 hosts).
#[cfg(target_arch = "x86_64")]
mod simd {
    #[allow(clippy::wildcard_imports)]
    use core::arch::x86_64::*;

    /// 16-wide quantized tile for `R` rows at `(i, j)`.
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2+FMA are available, `j + 16 <= n`, rows
    /// `i..i + R` exist in `a`/`out`, and `q` is a `k × n` matrix.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn qtile16<const R: usize>(
        a: &[f32],
        scales: &[f32],
        q: &[i8],
        n: usize,
        k: usize,
        bias: &[f32],
        out: &mut [f32],
        i: usize,
        j: usize,
        accumulate: bool,
    ) {
        debug_assert!(k == 0 || (i + R) * k <= a.len());
        debug_assert!(k == 0 || (k - 1) * n + j + 16 <= q.len());
        let mut acc_lo = [_mm256_setzero_ps(); R];
        let mut acc_hi = [_mm256_setzero_ps(); R];
        let mut q_off = j;
        for p in 0..k {
            let s = *scales.get_unchecked(p);
            // Widen 16 weight bytes to two f32 octets in registers —
            // exactly `f32::from(q)` per lane.
            let qv = _mm_loadu_si128(q.as_ptr().add(q_off).cast());
            let w_lo = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(qv));
            let w_hi = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128::<8>(qv)));
            for r in 0..R {
                let a_val = _mm256_set1_ps(*a.get_unchecked((i + r) * k + p) * s);
                acc_lo[r] = _mm256_fmadd_ps(a_val, w_lo, acc_lo[r]);
                acc_hi[r] = _mm256_fmadd_ps(a_val, w_hi, acc_hi[r]);
            }
            q_off += n;
        }
        let bias_lo = _mm256_loadu_ps(bias.as_ptr().add(j));
        let bias_hi = _mm256_loadu_ps(bias.as_ptr().add(j + 8));
        for r in 0..R {
            let out_ptr = out.as_mut_ptr().add((i + r) * n + j);
            // Same order as the scalar epilogue: acc + bias (then += out).
            let mut lo = _mm256_add_ps(acc_lo[r], bias_lo);
            let mut hi = _mm256_add_ps(acc_hi[r], bias_hi);
            if accumulate {
                lo = _mm256_add_ps(_mm256_loadu_ps(out_ptr), lo);
                hi = _mm256_add_ps(_mm256_loadu_ps(out_ptr.add(8)), hi);
            }
            _mm256_storeu_ps(out_ptr, lo);
            _mm256_storeu_ps(out_ptr.add(8), hi);
        }
    }
}

/// All column tiles for a block of `R` rows starting at row `i`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn qrow_block<const R: usize>(
    a: &[f32],
    scales: &[f32],
    q: &[i8],
    n: usize,
    k: usize,
    bias: &[f32],
    out: &mut [f32],
    i: usize,
    accumulate: bool,
    use_simd: bool,
) {
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_simd;
    let mut j = 0;
    while j + 16 <= n {
        #[cfg(target_arch = "x86_64")]
        if use_simd {
            // SAFETY: `use_simd` implies AVX2+FMA (runtime-detected), and
            // the loop guard gives `j + 16 <= n`.
            unsafe { simd::qtile16::<R>(a, scales, q, n, k, bias, out, i, j, accumulate) };
            j += 16;
            continue;
        }
        qtile::<R, 16>(a, scales, q, n, k, bias, out, i, j, accumulate);
        j += 16;
    }
    if j + 8 <= n {
        qtile::<R, 8>(a, scales, q, n, k, bias, out, i, j, accumulate);
        j += 8;
    }
    if j + 4 <= n {
        qtile::<R, 4>(a, scales, q, n, k, bias, out, i, j, accumulate);
        j += 4;
    }
    while j < n {
        qtile::<R, 1>(a, scales, q, n, k, bias, out, i, j, accumulate);
        j += 1;
    }
}

/// Single-threaded quantized GEMM over a row range.
#[allow(clippy::too_many_arguments)]
fn qgemm_rows(
    a: &[f32],
    m: usize,
    k: usize,
    scales: &[f32],
    q: &[i8],
    n: usize,
    bias: &[f32],
    out: &mut [f32],
    accumulate: bool,
    use_simd: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(q.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let mut i = 0;
    while i + 4 <= m {
        qrow_block::<4>(a, scales, q, n, k, bias, out, i, accumulate, use_simd);
        i += 4;
    }
    while i < m {
        qrow_block::<1>(a, scales, q, n, k, bias, out, i, accumulate, use_simd);
        i += 1;
    }
}

/// See the f32 GEMM driver: same raw-pointer idiom, same disjoint-rows
/// soundness argument.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Same cut-offs as the f32 driver (`kernels::PAR_MIN_MACS` rationale).
const PAR_MIN_MACS: usize = 1 << 17;
const PAR_MIN_BLOCK_ROWS: usize = 16;

/// The quantized GEMM driver: row blocks across an optional pool,
/// bit-identical at any thread count.
#[allow(clippy::too_many_arguments)]
fn qgemm(
    a: &[f32],
    m: usize,
    k: usize,
    scales: &[f32],
    q: &[i8],
    n: usize,
    bias: &[f32],
    out: &mut [f32],
    accumulate: bool,
    pool: Option<&ThreadPool>,
) {
    let use_simd = crate::kernels::simd_tile_available();
    let threads = pool.map_or(1, ThreadPool::threads);
    if threads <= 1 || m < 2 * PAR_MIN_BLOCK_ROWS || m * k * n < PAR_MIN_MACS {
        return qgemm_rows(a, m, k, scales, q, n, bias, out, accumulate, use_simd);
    }
    let pool = pool.expect("threads > 1 implies a pool");
    let target_blocks = threads * 4;
    let rows_per_block = m
        .div_ceil(target_blocks)
        .next_multiple_of(4)
        .max(PAR_MIN_BLOCK_ROWS);
    let blocks = m.div_ceil(rows_per_block);
    let out_ptr = SendPtr(out.as_mut_ptr());
    pool.run(blocks, &move |block| {
        // Read the whole wrapper so the closure captures the `Sync` wrapper,
        // not the bare pointer field (edition-2021 disjoint capture).
        let base = { out_ptr }.0;
        let start = block * rows_per_block;
        let rows = rows_per_block.min(m - start);
        // SAFETY: blocks tile `0..m` disjointly (see the f32 driver).
        let out_block = unsafe { std::slice::from_raw_parts_mut(base.add(start * n), rows * n) };
        qgemm_rows(
            &a[start * k..(start + rows) * k],
            rows,
            k,
            scales,
            q,
            n,
            bias,
            out_block,
            accumulate,
            use_simd,
        );
    });
}

// ---------------------------------------------------------------------------
// Quantized ResNet
// ---------------------------------------------------------------------------

/// One residual block with quantized weights.
#[derive(Clone, Debug)]
pub struct QuantizedBlockSnapshot {
    /// First (widening) linear layer.
    pub fc1: QuantizedLinearSnapshot,
    /// Second (projecting) linear layer.
    pub fc2: QuantizedLinearSnapshot,
    /// Nonlinearity between the two (applied in f32, exactly as the f32
    /// path does).
    pub activation: ActivationKind,
}

/// An int8 copy of a [`ResNetSnapshot`] — the coupling networks' quantized
/// tier. Activations stay f32 throughout; only weights are quantized.
#[derive(Clone, Debug)]
pub struct QuantizedResNetSnapshot {
    input: QuantizedLinearSnapshot,
    blocks: Vec<QuantizedBlockSnapshot>,
    output: QuantizedLinearSnapshot,
    output_tanh: bool,
}

impl QuantizedResNetSnapshot {
    /// Quantizes every linear layer of an f32 ResNet snapshot.
    pub fn from_snapshot(snapshot: &ResNetSnapshot) -> Self {
        let quantize_block = |block: &BlockSnapshot| QuantizedBlockSnapshot {
            fc1: QuantizedLinearSnapshot::from_snapshot(&block.fc1),
            fc2: QuantizedLinearSnapshot::from_snapshot(&block.fc2),
            activation: block.activation,
        };
        QuantizedResNetSnapshot {
            input: QuantizedLinearSnapshot::from_snapshot(snapshot.input_layer()),
            blocks: snapshot.block_layers().iter().map(quantize_block).collect(),
            output: QuantizedLinearSnapshot::from_snapshot(snapshot.output_layer()),
            output_tanh: snapshot.output_tanh(),
        }
    }

    /// Total bytes held by quantized weights across all layers.
    pub fn memory_bytes(&self) -> usize {
        self.input.memory_bytes()
            + self.output.memory_bytes()
            + self
                .blocks
                .iter()
                .map(|b| b.fc1.memory_bytes() + b.fc2.memory_bytes())
                .sum::<usize>()
    }

    /// Runs the forward pass into `out`, using `ws` for hidden activations
    /// (and its thread pool, if one is installed).
    ///
    /// Structurally identical to [`ResNetSnapshot::forward_into`]; the only
    /// difference is the dequantize-in-register weight reads.
    pub fn forward_into(&self, x: &Tensor, ws: &mut NetWorkspace, out: &mut Tensor) {
        let mut h = ws.take();
        let mut tmp = ws.take();
        self.input.forward_into(x, &mut h, ws.thread_pool());
        crate::kernels::relu_in_place(&mut h);
        for block in &self.blocks {
            block.fc1.forward_into(&h, &mut tmp, ws.thread_pool());
            crate::kernels::activate_in_place(block.activation, &mut tmp);
            block.fc2.forward_add_into(&tmp, &mut h, ws.thread_pool());
        }
        self.output.forward_into(&h, out, ws.thread_pool());
        if self.output_tanh {
            crate::kernels::tanh_in_place(out);
        }
        ws.put(tmp);
        ws.put(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::ResNet;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2024)
    }

    fn linear_snapshot(k: usize, n: usize, r: &mut impl rand::Rng) -> LinearSnapshot {
        LinearSnapshot::new(Tensor::randn(k, n, r), Tensor::randn(1, n, r))
    }

    #[test]
    fn dequantized_weights_stay_within_half_a_grid_step() {
        let mut r = rng();
        let snap = linear_snapshot(23, 37, &mut r);
        let qsnap = QuantizedLinearSnapshot::from_snapshot(&snap);
        let original = snap.weight_tensor();
        let restored = qsnap.dequantized_weight();
        for p in 0..23 {
            let row = &original.as_slice()[p * 37..(p + 1) * 37];
            let amax = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let step = amax / 127.0;
            for j in 0..37 {
                let delta = (original.get(p, j) - restored.get(p, j)).abs();
                assert!(
                    delta <= 0.5 * step + 1e-6,
                    "({p},{j}): |Δ|={delta} step={step}"
                );
            }
        }
    }

    #[test]
    fn quantized_forward_tracks_the_f32_forward() {
        let mut r = rng();
        let snap = linear_snapshot(48, 64, &mut r);
        let qsnap = QuantizedLinearSnapshot::from_snapshot(&snap);
        let x = Tensor::randn(9, 48, &mut r);
        let mut exact = Tensor::zeros(0, 0);
        snap.forward_into(&x, &mut exact);
        let mut quantized = Tensor::zeros(0, 0);
        qsnap.forward_into(&x, &mut quantized, None);
        assert_eq!(exact.shape(), quantized.shape());
        // Per-element error is bounded by Σ_p |x[p]| · s[p]/2; with unit
        // Gaussian weights and inputs this is well under 0.05 relative to
        // activations of order √48.
        for (e, q) in exact.as_slice().iter().zip(quantized.as_slice()) {
            assert!((e - q).abs() < 0.2, "exact {e} vs quantized {q}");
        }
    }

    #[test]
    fn simd_qtile_matches_scalar_qtile_bit_for_bit() {
        if !crate::kernels::simd_tile_available() {
            eprintln!("skipping: no AVX2/FMA on this host");
            return;
        }
        let mut r = rng();
        for (m, k, n) in [
            (4, 32, 16),
            (5, 7, 48),
            (3, 17, 35),
            (1, 64, 16),
            (8, 1, 80),
        ] {
            let snap = linear_snapshot(k, n, &mut r);
            let qsnap = QuantizedLinearSnapshot::from_snapshot(&snap);
            let x = Tensor::randn(m, k, &mut r);
            for accumulate in [false, true] {
                let mut simd_out = vec![1.0f32; m * n];
                let mut scalar_out = vec![1.0f32; m * n];
                for (buf, use_simd) in [(&mut simd_out, true), (&mut scalar_out, false)] {
                    qgemm_rows(
                        x.as_slice(),
                        m,
                        k,
                        &qsnap.scales,
                        &qsnap.q,
                        n,
                        &qsnap.bias,
                        buf,
                        accumulate,
                        use_simd,
                    );
                }
                assert_eq!(simd_out, scalar_out, "({m},{k},{n}) acc={accumulate}");
            }
        }
    }

    #[test]
    fn quantized_gemm_is_thread_count_invariant() {
        let mut r = rng();
        let snap = linear_snapshot(64, 80, &mut r);
        let qsnap = QuantizedLinearSnapshot::from_snapshot(&snap);
        let x = Tensor::randn(160, 64, &mut r);
        let mut serial = Tensor::zeros(0, 0);
        qsnap.forward_into(&x, &mut serial, None);
        for threads in [2, 4] {
            let pool = ThreadPool::new(threads);
            let mut threaded = Tensor::zeros(0, 0);
            qsnap.forward_into(&x, &mut threaded, Some(&pool));
            assert_eq!(
                serial.as_slice(),
                threaded.as_slice(),
                "{threads} threads must be bit-identical"
            );
        }
    }

    #[test]
    fn quantized_resnet_mirrors_the_f32_structure() {
        let mut r = rng();
        for bounded in [false, true] {
            let net = ResNet::new(10, 32, 10, 2, bounded, &mut r);
            let snap = net.snapshot();
            let qsnap = QuantizedResNetSnapshot::from_snapshot(&snap);
            assert!(qsnap.memory_bytes() > 0);
            let x = Tensor::randn(7, 10, &mut r);
            let mut ws = NetWorkspace::new();
            let mut exact = Tensor::zeros(0, 0);
            snap.forward_into(&x, &mut ws, &mut exact);
            let mut quantized = Tensor::zeros(0, 0);
            qsnap.forward_into(&x, &mut ws, &mut quantized);
            assert_eq!(exact.shape(), quantized.shape());
            let max_delta = exact
                .as_slice()
                .iter()
                .zip(quantized.as_slice())
                .map(|(e, q)| (e - q).abs())
                .fold(0.0f32, f32::max);
            assert!(max_delta < 0.5, "max |Δ| {max_delta} out of range");
            assert!(
                max_delta > 0.0,
                "quantization of random weights must not be a no-op"
            );
        }
    }

    #[test]
    fn all_zero_rows_quantize_to_exact_zero() {
        let snap = LinearSnapshot::new(Tensor::zeros(5, 8), Tensor::zeros(1, 8));
        let qsnap = QuantizedLinearSnapshot::from_snapshot(&snap);
        let x = Tensor::from_rows(&[vec![1.0; 5]]);
        let mut out = Tensor::zeros(0, 0);
        qsnap.forward_into(&x, &mut out, None);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }
}
