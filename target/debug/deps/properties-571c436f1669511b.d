/root/repo/target/debug/deps/properties-571c436f1669511b.d: tests/properties.rs

/root/repo/target/debug/deps/properties-571c436f1669511b: tests/properties.rs

tests/properties.rs:
