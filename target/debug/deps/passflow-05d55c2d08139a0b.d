/root/repo/target/debug/deps/passflow-05d55c2d08139a0b.d: src/lib.rs

/root/repo/target/debug/deps/libpassflow-05d55c2d08139a0b.rlib: src/lib.rs

/root/repo/target/debug/deps/libpassflow-05d55c2d08139a0b.rmeta: src/lib.rs

src/lib.rs:
