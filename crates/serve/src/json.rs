//! A minimal JSON value model, parser and writer.
//!
//! The serving wire format needs exactly four things: objects, arrays,
//! strings and numbers — with the guarantee that an `f64` survives a
//! serialize → parse round trip **bit-exactly**. Rust's shortest-round-trip
//! float formatting plus its correctly-rounded `f64::from_str` give that
//! guarantee for every finite value, which is what lets the serving tests
//! compare batched and serial scores at 0 ULP *through* the wire format.
//! Non-finite values (a `-inf` log-probability from an underflowing model)
//! are not representable in JSON and serialize as `null`; exact bit
//! patterns travel in the separate hex `*_bits` fields of the score
//! responses (see DESIGN.md, "Artifact schemas").

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Objects use a [`BTreeMap`] so serialization order is deterministic —
/// responses for identical requests are byte-identical, which the
/// conformance tests rely on.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Returns the string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Looks up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number that is `null` when non-finite (JSON has no `inf`/`nan`).
    pub fn num_or_null(value: f64) -> Json {
        if value.is_finite() {
            Json::Num(value)
        } else {
            Json::Null
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values in the safe range print without the
                    // ".0" (so `"version":2`, not `"version":2.0`); both
                    // forms parse back bit-exactly. Everything else uses
                    // the shortest representation that round-trips.
                    if n.fract() == 0.0 && n.abs() < 1e15 && !(*n == 0.0 && n.is_sign_negative()) {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n:?}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Compact JSON serialization (`value.to_string()` is the wire form).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a human-readable message describing the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

/// Nesting guard: the wire schema is at most a few levels deep, and a cap
/// keeps adversarial `[[[[…` bodies from exhausting the parse stack.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!(
                "unexpected {:?} at byte {}",
                char::from(c),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode "\uD8xx\uDCxx".
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("invalid low surrogate".to_string());
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err("invalid \\u escape".to_string()),
                            }
                            continue;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str and the
                    // cursor only ever advances by whole scalars, so the
                    // remainder is always valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("cursor stays on UTF-8 boundaries");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_documents() {
        let doc = r#"{"model":"default","passwords":["a","b\n\"c\""],"n":3.5}"#;
        let parsed = parse(doc).unwrap();
        assert_eq!(parsed.get("model").unwrap().as_str(), Some("default"));
        assert_eq!(parsed.get("n").unwrap().as_f64(), Some(3.5));
        let arr = parsed.get("passwords").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_str(), Some("b\n\"c\""));
        // Serialize → parse is the identity.
        assert_eq!(parse(&parsed.to_string()).unwrap(), parsed);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -123.456_789_012_345_67,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
            f64::from_bits(0xc02_8ae0_9d45_4c01),
        ] {
            let text = Json::Num(v).to_string();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} via {text}");
        }
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::num_or_null(f64::NEG_INFINITY), Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "\"unterminated",
            "nul",
            "1 2",
            "{\"a\":1}x",
            "\"bad \\q escape\"",
            "\"\\uZZZZ\"",
            "--1",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse(r#""\u0041\ud83d\ude00""#).unwrap(),
            Json::Str("A😀".to_string())
        );
        assert!(parse(r#""\ud800""#).is_err(), "lone surrogate");
    }
}
