//! Serving conformance suite: HTTP protocol behavior under adversarial
//! input, and bit-exactness of batched scoring under concurrency and
//! hot-swaps.
//!
//! The protocol half drives the server with malformed request lines,
//! oversized headers, split writes, pipelined bursts and invalid bodies,
//! asserting every one gets a clean 4xx — never a panic, never a hang.
//! The concurrency half holds the same bar as `tests/fastpath.rs`: scores
//! produced through the adaptive micro-batcher under N-thread load must be
//! **bit-identical** (0 ULP) to serial single-request scoring, and a model
//! hot-swap mid-load must never produce a torn or mixed-model response.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

use passflow::serve::client::{self, Connection};
use passflow::serve::{serve, BatcherConfig, ModelRegistry, ServedModel, ServerConfig};
use passflow::{FlowConfig, PassFlow, ProbabilityModel, SampleTable};

fn tiny_flow(seed: u64) -> PassFlow {
    let mut rng = passflow::nn::rng::seeded(seed);
    PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
}

/// Starts a server with one registered flow; the caller keeps the registry
/// handle (that is the hot-swap interface) and the flow (the serial oracle).
fn start_server(
    config: ServerConfig,
    seed: u64,
) -> (passflow::serve::ServerHandle, PassFlow, Arc<ModelRegistry>) {
    let flow = tiny_flow(seed);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(ServedModel::from_flow("default", &flow, 1, None));
    let server = serve(config, Arc::clone(&registry)).expect("bind on loopback");
    (server, flow, registry)
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

/// Extracts `"log_prob_bits"` hex fields from a score response, in order.
fn response_bits(body: &str) -> Vec<u64> {
    body.split("\"log_prob_bits\":\"")
        .skip(1)
        .map(|rest| u64::from_str_radix(&rest[..16], 16).expect("16 hex digits"))
        .collect()
}

/// Extracts the `"version"` field from a score response.
fn response_version(body: &str) -> u64 {
    let rest = body.split("\"version\":").nth(1).expect("version field");
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("integer version")
}

// ---------------------------------------------------------------------------
// Protocol conformance
// ---------------------------------------------------------------------------

#[test]
fn malformed_requests_get_clean_4xx() {
    let (server, _flow, _registry) = start_server(quick_config(), 1);
    let addr = server.addr();

    // (raw bytes, expected status) — each on a fresh connection.
    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"GARBAGE\r\n\r\n".to_vec(), 400),
        (b"GET /healthz\r\n\r\n".to_vec(), 400),
        (b"get /healthz HTTP/1.1\r\n\r\n".to_vec(), 400),
        (b"GET /healthz HTTP/9.9\r\n\r\n".to_vec(), 505),
        (
            format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(8192)).into_bytes(),
            414,
        ),
        (
            format!("GET /healthz HTTP/1.1\r\nx: {}\r\n\r\n", "v".repeat(8192)).into_bytes(),
            431,
        ),
        (
            format!(
                "GET /healthz HTTP/1.1\r\n{}\r\n",
                (0..100).map(|i| format!("h{i}: v\r\n")).collect::<String>()
            )
            .into_bytes(),
            431,
        ),
        (
            b"POST /v1/score HTTP/1.1\r\ncontent-length: 9999999\r\n\r\n".to_vec(),
            413,
        ),
        (
            b"POST /v1/score HTTP/1.1\r\ncontent-length: nope\r\n\r\n".to_vec(),
            400,
        ),
        (
            b"POST /v1/score HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".to_vec(),
            501,
        ),
        (
            b"GET /healthz HTTP/1.1\r\nbroken header\r\n\r\n".to_vec(),
            400,
        ),
    ];
    for (raw, expected) in cases {
        let mut conn = Connection::open(addr, Duration::from_secs(5)).unwrap();
        conn.stream().write_all(&raw).unwrap();
        conn.stream().flush().unwrap();
        let response = conn.read_response().unwrap();
        assert_eq!(
            response.status,
            expected,
            "{:?} → {}",
            String::from_utf8_lossy(&raw[..raw.len().min(40)]),
            response.text()
        );
    }

    // The server is still healthy after all of that.
    let health = client::request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\":\"ok\""));

    server.shutdown();
    server.join();
}

#[test]
fn bad_bodies_and_routes_get_clean_4xx() {
    let (server, _flow, _registry) = start_server(quick_config(), 2);
    let addr = server.addr();

    let cases: Vec<(&str, &str, Option<&str>, u16)> = vec![
        // Unknown endpoint and wrong methods.
        ("GET", "/nope", None, 404),
        ("DELETE", "/v1/score", None, 405),
        ("POST", "/healthz", None, 405),
        // Admin shutdown is disabled unless opted in.
        ("POST", "/admin/shutdown", None, 404),
        // Zero-length and malformed bodies.
        ("POST", "/v1/score", None, 400),
        ("POST", "/v1/score", Some("not json"), 400),
        ("POST", "/v1/score", Some("{\"passwords\":[]}"), 422),
        ("POST", "/v1/score", Some("{\"passwords\":\"abc\"}"), 422),
        ("POST", "/v1/score", Some("{\"passwords\":[1,2]}"), 422),
        ("POST", "/v1/score", Some("{}"), 422),
        (
            "POST",
            "/v1/score",
            Some("{\"model\":\"ghost\",\"passwords\":[\"a\"]}"),
            404,
        ),
        ("POST", "/v1/logprob", Some("not json"), 400),
    ];
    for (method, path, body, expected) in cases {
        let response = client::request(addr, method, path, body).unwrap();
        assert_eq!(
            response.status,
            expected,
            "{method} {path} {body:?} → {}",
            response.text()
        );
    }

    // A >max-batch body sheds with 413.
    let too_many: Vec<String> = (0..passflow::serve::MAX_REQUEST_PASSWORDS + 1)
        .map(|i| format!("\"p{i}\""))
        .collect();
    let body = format!("{{\"passwords\":[{}]}}", too_many.join(","));
    let response = client::request(addr, "POST", "/v1/score", Some(&body)).unwrap();
    assert_eq!(response.status, 413, "{}", response.text());

    server.shutdown();
    server.join();
}

#[test]
fn split_writes_and_pipelining_are_handled() {
    let (server, flow, _registry) = start_server(quick_config(), 3);
    let addr = server.addr();

    // Partial/split reads: dribble a valid request a few bytes at a time.
    let mut conn = Connection::open(addr, Duration::from_secs(10)).unwrap();
    let body = r#"{"passwords":["jimmy91"]}"#;
    let raw = format!(
        "POST /v1/score HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    for chunk in raw.as_bytes().chunks(7) {
        conn.stream().write_all(chunk).unwrap();
        conn.stream().flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let response = conn.read_response().unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let expected = flow.password_log_prob("jimmy91").unwrap();
    assert_eq!(response_bits(&response.text()), vec![expected.to_bits()]);

    // Pipelining: three requests written back-to-back, three responses in
    // order on the same connection.
    let mut conn = Connection::open(addr, Duration::from_secs(10)).unwrap();
    conn.send("GET", "/healthz", None).unwrap();
    conn.send("POST", "/v1/score", Some(r#"{"passwords":["dragon"]}"#))
        .unwrap();
    conn.send("GET", "/metrics", None).unwrap();
    let first = conn.read_response().unwrap();
    assert_eq!(first.status, 200);
    assert!(first.text().contains("\"status\":\"ok\""));
    let second = conn.read_response().unwrap();
    let expected = flow.password_log_prob("dragon").unwrap();
    assert_eq!(response_bits(&second.text()), vec![expected.to_bits()]);
    let third = conn.read_response().unwrap();
    assert!(third.text().contains("passflow_requests_total"));

    server.shutdown();
    server.join();
}

#[test]
fn metrics_and_healthz_expose_serving_state() {
    let (server, _flow, _registry) = start_server(quick_config(), 4);
    let addr = server.addr();

    for pw in ["aaa", "bbb", "ccc"] {
        let body = format!("{{\"passwords\":[\"{pw}\"]}}");
        let response = client::request(addr, "POST", "/v1/score", Some(&body)).unwrap();
        assert_eq!(response.status, 200);
    }
    let _ = client::request(addr, "GET", "/nope", None).unwrap();

    let metrics = client::request(addr, "GET", "/metrics", None)
        .unwrap()
        .text();
    assert!(metrics.contains("passflow_requests_total{endpoint=\"score\",status=\"2xx\"} 3"));
    assert!(metrics.contains("passflow_requests_total{endpoint=\"other\",status=\"4xx\"} 1"));
    assert!(metrics.contains("passflow_batch_size_bucket"));
    assert!(metrics.contains("passflow_request_latency_seconds{quantile=\"0.99\"}"));

    let health = client::request(addr, "GET", "/healthz", None)
        .unwrap()
        .text();
    assert!(health.contains("\"models\":[\"default\"]"));

    server.shutdown();
    server.join();
}

// ---------------------------------------------------------------------------
// Concurrency correctness
// ---------------------------------------------------------------------------

#[test]
fn concurrent_batched_scores_are_bit_identical_to_serial() {
    // Force real coalescing: a generous straggler window and batch size.
    let config = ServerConfig {
        batcher: BatcherConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(5),
            ..BatcherConfig::default()
        },
        ..quick_config()
    };
    let (server, flow, _registry) = start_server(config, 5);
    let addr = server.addr();

    const THREADS: usize = 8;
    const REQUESTS: usize = 24;
    let clients: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut conn = Connection::open(addr, Duration::from_secs(30)).unwrap();
                (0..REQUESTS)
                    .map(|i| {
                        // Overlapping password sets across threads, plus an
                        // unencodable one to keep the None path honest.
                        let pw = if i % 7 == 6 {
                            "waytoolongtoencode".to_string()
                        } else {
                            format!("pw{}x{}", t % 3, i)
                        };
                        let body = format!("{{\"passwords\":[{}]}}", serve_quote(&pw));
                        let response = conn.request("POST", "/v1/score", Some(&body)).unwrap();
                        assert_eq!(response.status, 200);
                        (pw, response.text())
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    for client in clients {
        for (pw, body) in client.join().unwrap() {
            let bits = response_bits(&body);
            match flow.password_log_prob(&pw) {
                Some(expected) => {
                    assert_eq!(bits, vec![expected.to_bits()], "{pw}: batched ≠ serial")
                }
                None => assert!(bits.is_empty(), "{pw} must score null"),
            }
        }
    }

    // The batcher actually coalesced: at least one multi-request tick.
    let metrics = server.metrics();
    assert!(
        metrics.total_requests() >= (THREADS * REQUESTS) as u64,
        "all requests recorded"
    );

    server.shutdown();
    server.join();
}

/// Minimal JSON string quoting for test bodies.
fn serve_quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

#[test]
fn hot_swap_mid_load_never_tears_a_response() {
    let (server, flow_v1, registry) = start_server(quick_config(), 6);
    let addr = server.addr();
    let flow_v2 = tiny_flow(7);

    // Expected scores per version for the probe password.
    let probe = "jimmy91";
    let v1_bits = flow_v1.password_log_prob(probe).unwrap().to_bits();
    let v2_bits = flow_v2.password_log_prob(probe).unwrap().to_bits();
    assert_ne!(v1_bits, v2_bits, "the two versions must disagree");

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut conn = Connection::open(addr, Duration::from_secs(30)).unwrap();
                let mut observed: Vec<(u64, u64)> = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let response = conn
                        .request("POST", "/v1/score", Some(r#"{"passwords":["jimmy91"]}"#))
                        .unwrap();
                    assert_eq!(response.status, 200);
                    let text = response.text();
                    observed.push((response_version(&text), response_bits(&text)[0]));
                }
                observed
            })
        })
        .collect();

    // Let load build up, then swap under it.
    std::thread::sleep(Duration::from_millis(100));
    let displaced = registry
        .swap(ServedModel::from_flow("default", &flow_v2, 2, None))
        .expect("default is registered");
    assert_eq!(displaced.version(), 1);
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    let mut saw_v1 = false;
    let mut saw_v2 = false;
    for client in clients {
        for (version, bits) in client.join().unwrap() {
            match version {
                1 => {
                    saw_v1 = true;
                    assert_eq!(bits, v1_bits, "version 1 response must carry v1 weights");
                }
                2 => {
                    saw_v2 = true;
                    assert_eq!(bits, v2_bits, "version 2 response must carry v2 weights");
                }
                other => panic!("unexpected version {other}"),
            }
        }
    }
    assert!(saw_v1, "some requests must land before the swap");
    assert!(saw_v2, "some requests must land after the swap");

    server.shutdown();
    server.join();
}

#[test]
fn score_estimates_match_the_sample_table() {
    let flow = tiny_flow(8);
    let table = SampleTable::build(&flow, 500, 3);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(ServedModel::from_flow(
        "default",
        &flow,
        1,
        Some(table.clone()),
    ));
    let server = serve(quick_config(), registry).unwrap();
    let addr = server.addr();

    let response = client::request(
        addr,
        "POST",
        "/v1/score",
        Some(r#"{"passwords":["dragon"]}"#),
    )
    .unwrap();
    assert_eq!(response.status, 200);
    let text = response.text();
    assert!(text.contains("\"log2_guess_number\":"));

    // The served estimate equals the offline estimate for the same score.
    let lp = flow.password_log_prob("dragon").unwrap();
    let expected = table.estimate(lp);
    let served: f64 = text
        .split("\"log2_guess_number\":")
        .nth(1)
        .unwrap()
        .split([',', '}'])
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(served.to_bits(), expected.log2_guess_number.to_bits());

    server.shutdown();
    server.join();
}
