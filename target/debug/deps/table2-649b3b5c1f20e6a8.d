/root/repo/target/debug/deps/table2-649b3b5c1f20e6a8.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-649b3b5c1f20e6a8.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
