/root/repo/target/debug/deps/passflow_bench-cc8a47b172c0d9a0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/passflow_bench-cc8a47b172c0d9a0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
