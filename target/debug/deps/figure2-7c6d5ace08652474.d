/root/repo/target/debug/deps/figure2-7c6d5ace08652474.d: crates/bench/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-7c6d5ace08652474.rmeta: crates/bench/src/bin/figure2.rs Cargo.toml

crates/bench/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
