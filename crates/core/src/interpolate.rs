//! Latent-space interpolation between passwords (Algorithm 2, Figure 3).
//!
//! Given a start and a target password, both are mapped to the latent space,
//! the straight line between them is discretized into `steps` segments, and
//! every intermediate latent point is mapped back through the inverse flow
//! and decoded. Because the learned latent space is smooth, intermediate
//! points decode to realistic, human-like passwords (Section V-B).

use passflow_nn::Tensor;

use crate::error::{FlowError, Result};
use crate::flow::PassFlow;

/// A single step of an interpolation path.
#[derive(Clone, Debug, PartialEq)]
pub struct InterpolationPoint {
    /// Step index, from 0 (start password) to `steps` (target password).
    pub step: usize,
    /// The latent point at this step.
    pub latent: Vec<f32>,
    /// The decoded password at this step.
    pub password: String,
}

/// Interpolates between two passwords in the latent space (Algorithm 2).
///
/// Returns `steps + 1` points; the first decodes (approximately) to `start`
/// and the last to `target`.
///
/// # Errors
///
/// * [`FlowError::UnencodablePassword`] if either endpoint cannot be encoded.
/// * [`FlowError::InvalidConfig`] if `steps` is zero.
pub fn interpolate(
    flow: &PassFlow,
    start: &str,
    target: &str,
    steps: usize,
) -> Result<Vec<InterpolationPoint>> {
    if steps == 0 {
        return Err(FlowError::InvalidConfig(
            "interpolation needs at least one step".into(),
        ));
    }
    let z1 = flow
        .latent_of(start)
        .ok_or_else(|| FlowError::UnencodablePassword(start.to_string()))?;
    let z2 = flow
        .latent_of(target)
        .ok_or_else(|| FlowError::UnencodablePassword(target.to_string()))?;

    // δ = (z2 − z1) / steps, intermediate point i = z1 + δ·i  (Algorithm 2).
    let delta: Vec<f32> = z1
        .iter()
        .zip(z2.iter())
        .map(|(a, b)| (b - a) / steps as f32)
        .collect();

    let mut latents = Tensor::zeros(steps + 1, flow.dim());
    for i in 0..=steps {
        for j in 0..flow.dim() {
            latents.set(i, j, z1[j] + delta[j] * i as f32);
        }
    }
    let decoded = flow.decode_batch(&flow.inverse(&latents));

    Ok(decoded
        .into_iter()
        .enumerate()
        .map(|(step, password)| InterpolationPoint {
            step,
            latent: latents.row_slice(step).to_vec(),
            password,
        })
        .collect())
}

/// Convenience wrapper returning only the decoded passwords along the path.
///
/// # Errors
///
/// Same as [`interpolate`].
pub fn interpolate_passwords(
    flow: &PassFlow,
    start: &str,
    target: &str,
    steps: usize,
) -> Result<Vec<String>> {
    Ok(interpolate(flow, start, target, steps)?
        .into_iter()
        .map(|p| p.password)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use passflow_nn::rng as nnrng;

    fn tiny_flow(seed: u64) -> PassFlow {
        let mut rng = nnrng::seeded(seed);
        PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn endpoints_decode_to_the_original_passwords() {
        let flow = tiny_flow(1);
        let path = interpolate(&flow, "jimmy91", "123456", 8).unwrap();
        assert_eq!(path.len(), 9);
        assert_eq!(path.first().unwrap().password, "jimmy91");
        assert_eq!(path.last().unwrap().password, "123456");
        assert_eq!(path.first().unwrap().step, 0);
        assert_eq!(path.last().unwrap().step, 8);
    }

    #[test]
    fn latent_path_is_a_straight_line() {
        let flow = tiny_flow(2);
        let path = interpolate(&flow, "monkey", "dragon", 4).unwrap();
        let z0 = &path[0].latent;
        let z4 = &path[4].latent;
        let mid = &path[2].latent;
        for j in 0..z0.len() {
            let expected = 0.5 * (z0[j] + z4[j]);
            assert!((mid[j] - expected).abs() < 1e-4);
        }
    }

    #[test]
    fn all_intermediate_points_decode_to_valid_strings() {
        let flow = tiny_flow(3);
        let path = interpolate_passwords(&flow, "sunshine", "qwerty12", 10).unwrap();
        assert_eq!(path.len(), 11);
        for p in &path {
            assert!(p.chars().count() <= 10);
            assert!(flow.encoder().can_encode(p), "invalid interpolation {p:?}");
        }
    }

    #[test]
    fn single_step_gives_just_the_endpoints() {
        let flow = tiny_flow(4);
        let path = interpolate_passwords(&flow, "hello1", "world2", 1).unwrap();
        assert_eq!(path, vec!["hello1".to_string(), "world2".to_string()]);
    }

    #[test]
    fn errors_on_bad_input() {
        let flow = tiny_flow(5);
        assert!(matches!(
            interpolate(&flow, "waytoolongpassword", "ok", 4),
            Err(FlowError::UnencodablePassword(_))
        ));
        assert!(matches!(
            interpolate(&flow, "ok", "ok2", 0),
            Err(FlowError::InvalidConfig(_))
        ));
    }

    #[test]
    fn interpolating_a_password_with_itself_is_constant() {
        let flow = tiny_flow(6);
        let path = interpolate_passwords(&flow, "shadow7", "shadow7", 5).unwrap();
        assert!(path.iter().all(|p| p == "shadow7"));
    }
}
