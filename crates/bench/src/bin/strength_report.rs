//! Emits the strength-meter report: per-dataset guess-number distributions
//! and model-vs-model agreement, over the shared workbench's trained flow
//! and the Markov/PCFG baselines.
//!
//! ```text
//! cargo run --release -p passflow-bench --bin strength_report -- --scale smoke [--threads N]
//! ```
//!
//! Worker threads follow the repo-wide discipline: `--threads` wins, then
//! the `PASSFLOW_THREADS` environment variable, then the scale preset's
//! shard count — always clamped to the host. Thread counts only change
//! wall-clock, never a reported number.

use passflow_bench::{emit, prepare, scale_from_env};
use passflow_core::ProbabilityModel;
use passflow_eval::strength::{
    guess_number_distribution, model_agreement, sample_tables, ModelEntry,
};

use passflow_baselines::{MarkovModel, PcfgModel};

/// Parses `--threads N` from the command line, if present.
fn threads_flag() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--threads" {
            return args.next().and_then(|v| v.parse().ok());
        }
    }
    None
}

fn main() -> passflow_core::Result<()> {
    let scale = scale_from_env();
    let explicit = threads_flag();
    let shards = if explicit.is_some() || std::env::var_os("PASSFLOW_THREADS").is_some() {
        passflow_nn::resolve_threads(explicit)
    } else {
        passflow_nn::clamp_threads(scale.attack_shards)
    };
    let workbench = prepare(scale)?;

    let max_len = workbench.flow.encoder().max_len();
    let markov = MarkovModel::train(&workbench.split.train, 2, max_len);
    let pcfg = PcfgModel::train(&workbench.split.train, max_len);
    let models: Vec<&dyn ProbabilityModel> = vec![&workbench.flow, &markov, &pcfg];

    // One sample table per model; size scales with the corpus so smoke runs
    // stay fast while larger scales tighten the confidence intervals.
    let samples = workbench.split.train.len().clamp(2_000, 50_000);
    eprintln!(
        "building {} sample tables of {samples} samples",
        models.len()
    );
    let tables = sample_tables(&models, samples, workbench.scale.seed, shards);
    let entries: Vec<ModelEntry<'_>> = models
        .iter()
        .zip(tables.iter())
        .map(|(m, t)| (*m, t))
        .collect();

    let train_slice = &workbench.split.train[..workbench.split.train.len().min(2_000)];
    let datasets: Vec<(&str, &[String])> = vec![
        ("train", train_slice),
        ("test (unique)", &workbench.split.test_unique),
    ];

    // Treat the training corpus as the "breached" set: every training
    // password lands in a digest store, so the report's Breached % column
    // shows how much of each dataset an attacker gets by pure replay.
    let digest_path = std::env::temp_dir().join(format!(
        "passflow-strength-breach-{}.pfd",
        std::process::id()
    ));
    let mut digest_builder =
        passflow_store::DigestStoreBuilder::new(passflow_store::DigestConfig::default());
    for pw in &workbench.split.train {
        digest_builder
            .add_password(pw)
            .map_err(|e| passflow_core::FlowError::InvalidConfig(format!("digest build: {e}")))?;
    }
    digest_builder
        .finish(&digest_path)
        .map_err(|e| passflow_core::FlowError::InvalidConfig(format!("digest build: {e}")))?;
    let digest = passflow_store::DigestStore::open(&digest_path)
        .map_err(|e| passflow_core::FlowError::InvalidConfig(format!("digest open: {e}")))?;

    emit(
        &guess_number_distribution(&entries, &datasets, shards, Some(&digest)),
        "strength_distribution",
    );
    let _ = std::fs::remove_file(&digest_path);
    emit(
        &model_agreement(&entries, &workbench.split.test_unique, shards),
        "strength_agreement",
    );
    Ok(())
}
