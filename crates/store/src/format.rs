//! The `PFDIGEST v1` artifact: layout, writer, reader and verification.
//!
//! A digest store is a sorted set of truncated SHA-1 digests with optional
//! breach counts, packed for random access (full field spec: DESIGN.md,
//! "Artifact schemas"):
//!
//! ```text
//! ┌────────────────────┐ offset 0
//! │ header   (64 B)    │ magic, version, config, counts, index offset,
//! │                    │ record checksum
//! ├────────────────────┤ offset 64
//! │ block 0            │ ≤ records_per_block prefix-compressed records
//! │ block 1            │
//! │ …                  │
//! ├────────────────────┤ header.index_offset
//! │ block index        │ per block: first digest, offset, length, count
//! └────────────────────┘
//! ```
//!
//! Within a block the first record's digest is stored raw; every following
//! record stores one byte of shared-prefix length with its predecessor plus
//! the differing suffix — sorted digests share long prefixes, so this is
//! the "delta" form of a digest list. Counts are LEB128 varints. The block
//! index is loaded into memory on open; any digest or digest-prefix range
//! then costs **one** index binary search plus one positioned read per
//! touched block, so lookups never scan the artifact.
//!
//! Byte determinism is load-bearing: the encoded artifact is a pure
//! function of `(config, sorted record stream)`, which is what lets the
//! tests assert that a one-pass build and a 4-shard
//! [`merge`](crate::merge::merge_artifacts) produce byte-identical files.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::io::{FileIo, RetryPolicy, StoreIo};
use crate::sha1;

/// Artifact magic bytes.
pub const MAGIC: &[u8; 8] = b"PFDIGEST";
/// Artifact format version.
pub const VERSION: u32 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: u64 = 64;

/// Errors raised by the store layer.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure reading or writing an artifact.
    Io(std::io::Error),
    /// A malformed artifact, query or record stream (message says where).
    Format(String),
    /// A positioned read failed even after the bounded retry discipline in
    /// [`crate::io::read_exact_at`] — the artifact is (for now) unreachable,
    /// not provably corrupt. Serving layers treat this as "store
    /// unavailable": degrade or 503, never 500, and feed the circuit
    /// breaker.
    Unavailable {
        /// What the store was doing when the read failed.
        context: String,
        /// The final I/O error after retries were exhausted.
        error: std::io::Error,
    },
}

impl StoreError {
    /// Whether this is a retryable-availability failure (as opposed to
    /// provable corruption or a write-path I/O error).
    pub fn is_unavailable(&self) -> bool {
        matches!(self, StoreError::Unavailable { .. })
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Format(msg) => write!(f, "format error: {msg}"),
            StoreError::Unavailable { context, error } => {
                write!(f, "store unavailable ({context}): {error}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Store-layer result type.
pub type Result<T> = std::result::Result<T, StoreError>;

pub(crate) fn format_err<T>(msg: impl Into<String>) -> Result<T> {
    Err(StoreError::Format(msg.into()))
}

/// Tuning knobs baked into an artifact's header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DigestConfig {
    /// Stored bytes per digest (4..=20, truncated from SHA-1's 20). 16
    /// bytes keep the accidental-collision odds negligible (`2⁻¹²⁸`-ish
    /// per pair) at 20% less space than full digests.
    pub digest_bytes: usize,
    /// Whether per-record breach counts are stored. Without counts every
    /// lookup reports a count of 1 (pure membership).
    pub counts: bool,
    /// Records per compressed block — the random-access granularity. Small
    /// blocks seek less data per query; large blocks compress better.
    pub records_per_block: usize,
}

impl Default for DigestConfig {
    fn default() -> Self {
        DigestConfig {
            digest_bytes: 16,
            counts: true,
            records_per_block: 1024,
        }
    }
}

impl DigestConfig {
    /// Checks the invariants enforced on both write and load.
    pub fn validate(&self) -> Result<()> {
        if !(4..=sha1::DIGEST_LEN).contains(&self.digest_bytes) {
            return format_err(format!(
                "digest_bytes must be 4..=20, got {}",
                self.digest_bytes
            ));
        }
        if self.records_per_block == 0 || self.records_per_block > u32::MAX as usize {
            return format_err("records_per_block must be positive and fit in u32");
        }
        Ok(())
    }
}

/// A record key: full-width digest storage, significant up to
/// `digest_bytes` (the tail is zero so array comparison orders correctly).
pub type RawDigest = [u8; sha1::DIGEST_LEN];

/// Truncates `digest` to `digest_bytes`, zero-padding the tail.
pub fn truncate_digest(digest: &[u8], digest_bytes: usize) -> RawDigest {
    let mut out = [0u8; sha1::DIGEST_LEN];
    let take = digest.len().min(digest_bytes);
    out[..take].copy_from_slice(&digest[..take]);
    out
}

// ---------------------------------------------------------------------------
// Primitive codecs
// ---------------------------------------------------------------------------

/// Appends a LEB128 varint.
pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `data[*pos..]`.
pub(crate) fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let Some(&byte) = data.get(*pos) else {
            return format_err("truncated varint in block");
        };
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    format_err("varint longer than 64 bits")
}

/// FNV-1a 64-bit, used for the whole-stream record checksum.
pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a offset basis (checksum seed).
pub(crate) const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one served record into the running checksum. The count hashed is
/// the count a reader will *see* (1 when counts are disabled), so the
/// checksum binds exactly the bytes [`RecordCursor`] replays.
fn checksum_record(hash: u64, digest: &[u8], count: u64) -> u64 {
    fnv1a(fnv1a(hash, digest), &count.to_le_bytes())
}

// ---------------------------------------------------------------------------
// Header + index
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Header {
    config: DigestConfig,
    record_count: u64,
    block_count: u64,
    index_offset: u64,
    checksum: u64,
}

impl Header {
    fn encode(&self) -> [u8; HEADER_LEN as usize] {
        let mut out = [0u8; HEADER_LEN as usize];
        out[..8].copy_from_slice(MAGIC);
        out[8..12].copy_from_slice(&VERSION.to_le_bytes());
        out[12] = self.config.digest_bytes as u8;
        out[13] = u8::from(self.config.counts);
        out[16..20].copy_from_slice(&(self.config.records_per_block as u32).to_le_bytes());
        out[24..32].copy_from_slice(&self.record_count.to_le_bytes());
        out[32..40].copy_from_slice(&self.block_count.to_le_bytes());
        out[40..48].copy_from_slice(&self.index_offset.to_le_bytes());
        out[48..56].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    fn decode(raw: &[u8]) -> Result<Header> {
        if raw.len() < HEADER_LEN as usize {
            return format_err("file shorter than the PFDIGEST header");
        }
        if &raw[..8] != MAGIC {
            return format_err("bad magic (not a PFDIGEST artifact)");
        }
        let version = u32::from_le_bytes(raw[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return format_err(format!("unsupported PFDIGEST version {version}"));
        }
        let config = DigestConfig {
            digest_bytes: raw[12] as usize,
            counts: match raw[13] {
                0 => false,
                1 => true,
                other => return format_err(format!("bad counts flag {other}")),
            },
            records_per_block: u32::from_le_bytes(raw[16..20].try_into().expect("4 bytes"))
                as usize,
        };
        config.validate()?;
        Ok(Header {
            config,
            record_count: u64::from_le_bytes(raw[24..32].try_into().expect("8 bytes")),
            block_count: u64::from_le_bytes(raw[32..40].try_into().expect("8 bytes")),
            index_offset: u64::from_le_bytes(raw[40..48].try_into().expect("8 bytes")),
            checksum: u64::from_le_bytes(raw[48..56].try_into().expect("8 bytes")),
        })
    }
}

/// One block's entry in the in-memory index.
#[derive(Clone, Debug)]
struct IndexEntry {
    /// First digest in the block (truncated, zero-padded).
    first: RawDigest,
    /// Absolute file offset of the encoded block.
    offset: u64,
    /// Encoded byte length of the block.
    len: u32,
    /// Records in the block.
    records: u32,
}

impl IndexEntry {
    fn encoded_len(digest_bytes: usize) -> usize {
        digest_bytes + 8 + 4 + 4
    }

    fn encode(&self, digest_bytes: usize, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.first[..digest_bytes]);
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.records.to_le_bytes());
    }

    fn decode(raw: &[u8], digest_bytes: usize) -> IndexEntry {
        let d = digest_bytes;
        IndexEntry {
            first: truncate_digest(&raw[..d], d),
            offset: u64::from_le_bytes(raw[d..d + 8].try_into().expect("8 bytes")),
            len: u32::from_le_bytes(raw[d + 8..d + 12].try_into().expect("4 bytes")),
            records: u32::from_le_bytes(raw[d + 12..d + 16].try_into().expect("4 bytes")),
        }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Summary of a finished artifact.
#[derive(Clone, Copy, Debug)]
pub struct DigestStats {
    /// Unique digests written.
    pub record_count: u64,
    /// Blocks written.
    pub block_count: u64,
    /// Total artifact size in bytes.
    pub bytes: u64,
}

/// Streams a **strictly ascending** record sequence into an artifact.
///
/// The writer encodes blocks as records arrive, accumulates the index in
/// memory, and on [`finish`](Self::finish) appends the index, patches the
/// header and atomically renames a `.tmp` sibling over the target path —
/// a crashed build never leaves a half-written artifact behind.
pub struct ArtifactWriter {
    file: BufWriter<File>,
    config: DigestConfig,
    block: Vec<u8>,
    block_first: RawDigest,
    block_records: u32,
    prev: Option<RawDigest>,
    index: Vec<IndexEntry>,
    offset: u64,
    record_count: u64,
    checksum: u64,
    tmp_path: PathBuf,
    final_path: PathBuf,
    finished: bool,
}

impl ArtifactWriter {
    /// Opens a writer targeting `path` (written via a `.tmp` sibling).
    ///
    /// # Errors
    ///
    /// Invalid config or file-creation failures.
    pub fn create(path: impl AsRef<Path>, config: DigestConfig) -> Result<ArtifactWriter> {
        config.validate()?;
        let final_path = path.as_ref().to_path_buf();
        let mut tmp_os = final_path.clone().into_os_string();
        tmp_os.push(".tmp");
        let tmp_path = PathBuf::from(tmp_os);
        let mut file = BufWriter::new(File::create(&tmp_path)?);
        // Placeholder header; patched in finish() once totals are known.
        file.write_all(&[0u8; HEADER_LEN as usize])?;
        Ok(ArtifactWriter {
            file,
            config,
            block: Vec::new(),
            block_first: [0u8; sha1::DIGEST_LEN],
            block_records: 0,
            prev: None,
            index: Vec::new(),
            offset: HEADER_LEN,
            record_count: 0,
            checksum: FNV_SEED,
            tmp_path,
            final_path,
            finished: false,
        })
    }

    /// Appends one record. `digest` may be a full SHA-1 digest or already
    /// truncated; only the first `digest_bytes` matter. A zero `count` is
    /// stored as 1 (a present record was seen at least once).
    ///
    /// # Errors
    ///
    /// Rejects records that are not strictly greater than their
    /// predecessor (the caller owns sorting and dedup), and I/O failures.
    pub fn push(&mut self, digest: &[u8], count: u64) -> Result<()> {
        let db = self.config.digest_bytes;
        if digest.len() < db {
            return format_err(format!(
                "digest is {} bytes, store needs at least {db}",
                digest.len()
            ));
        }
        let key = truncate_digest(digest, db);
        if let Some(prev) = &self.prev {
            if key <= *prev {
                return format_err(format!(
                    "records must be strictly ascending ({} after {})",
                    sha1::to_hex(&key[..db]),
                    sha1::to_hex(&prev[..db]),
                ));
            }
        }
        let served_count = if self.config.counts { count.max(1) } else { 1 };

        if self.block_records == 0 {
            self.block_first = key;
            self.block.extend_from_slice(&key[..db]);
        } else {
            let prev = self.prev.expect("non-first record has a predecessor");
            let shared = key[..db]
                .iter()
                .zip(prev[..db].iter())
                .take_while(|(a, b)| a == b)
                .count();
            self.block.push(shared as u8);
            self.block.extend_from_slice(&key[shared..db]);
        }
        if self.config.counts {
            write_varint(&mut self.block, served_count);
        }
        self.checksum = checksum_record(self.checksum, &key[..db], served_count);
        self.prev = Some(key);
        self.block_records += 1;
        self.record_count += 1;
        if self.block_records as usize == self.config.records_per_block {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.block_records == 0 {
            return Ok(());
        }
        self.index.push(IndexEntry {
            first: self.block_first,
            offset: self.offset,
            len: self.block.len() as u32,
            records: self.block_records,
        });
        self.file.write_all(&self.block)?;
        self.offset += self.block.len() as u64;
        self.block.clear();
        self.block_records = 0;
        Ok(())
    }

    /// Flushes the final block, writes the index, patches the header and
    /// renames the artifact into place.
    ///
    /// # Errors
    ///
    /// I/O failures; the `.tmp` file is removed on drop if this fails.
    pub fn finish(mut self) -> Result<DigestStats> {
        self.flush_block()?;
        let index_offset = self.offset;
        let mut encoded = Vec::with_capacity(
            self.index.len() * IndexEntry::encoded_len(self.config.digest_bytes),
        );
        for entry in &self.index {
            entry.encode(self.config.digest_bytes, &mut encoded);
        }
        self.file.write_all(&encoded)?;

        let header = Header {
            config: self.config,
            record_count: self.record_count,
            block_count: self.index.len() as u64,
            index_offset,
            checksum: self.checksum,
        };
        self.file.flush()?;
        let file = self.file.get_mut();
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header.encode())?;
        file.sync_all()?;
        std::fs::rename(&self.tmp_path, &self.final_path)?;
        self.finished = true;
        Ok(DigestStats {
            record_count: header.record_count,
            block_count: header.block_count,
            bytes: index_offset + encoded.len() as u64,
        })
    }
}

impl Drop for ArtifactWriter {
    fn drop(&mut self) {
        if !self.finished {
            let _ = std::fs::remove_file(&self.tmp_path);
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One suffix revealed by a k-anonymity range query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeEntry {
    /// Uppercase hex of the stored digest *after* the queried prefix.
    pub suffix: String,
    /// Breach count (1 for membership-only stores).
    pub count: u64,
}

/// Outcome of a full [`DigestStore::verify`] pass.
#[derive(Clone, Copy, Debug)]
pub struct VerifyReport {
    /// Records decoded across all blocks.
    pub record_count: u64,
    /// Blocks decoded.
    pub block_count: u64,
    /// Recomputed stream checksum (equals the header's on success).
    pub checksum: u64,
}

/// An open, random-access `PFDIGEST v1` artifact.
///
/// The block index lives in memory; record data is read positionally per
/// query, so the store is `Send + Sync` and cheap to share behind an `Arc`
/// across serving threads.
pub struct DigestStore {
    io: Box<dyn StoreIo>,
    retry: RetryPolicy,
    config: DigestConfig,
    record_count: u64,
    checksum: u64,
    index: Vec<IndexEntry>,
    file_len: u64,
    path: PathBuf,
}

impl std::fmt::Debug for DigestStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DigestStore")
            .field("path", &self.path)
            .field("records", &self.record_count)
            .field("blocks", &self.index.len())
            .field("config", &self.config)
            .finish()
    }
}

impl DigestStore {
    /// Opens an artifact, validating the header and loading the index.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`StoreError::Format`] for anything structurally
    /// wrong: bad magic/version/config, truncated file, index out of
    /// bounds or out of order, record counts that do not add up.
    pub fn open(path: impl AsRef<Path>) -> Result<DigestStore> {
        let io = FileIo::open(path.as_ref())?;
        DigestStore::open_with_io(path, Box::new(io))
    }

    /// Opens an artifact through a caller-supplied [`StoreIo`] — the seam
    /// the chaos suite uses to slide a
    /// [`FaultyIo`](crate::io::FaultyIo) under a live store. Header and
    /// index reads go through the same bounded-retry discipline as query
    /// reads.
    ///
    /// # Errors
    ///
    /// As [`DigestStore::open`], plus [`StoreError::Unavailable`] when the
    /// supplied io cannot complete the header/index reads.
    pub fn open_with_io(path: impl AsRef<Path>, io: Box<dyn StoreIo>) -> Result<DigestStore> {
        let path = path.as_ref().to_path_buf();
        let retry = RetryPolicy::default();
        let file_len = io.byte_len().map_err(|error| StoreError::Unavailable {
            context: "reading artifact length".to_string(),
            error,
        })?;
        let mut raw_header = [0u8; HEADER_LEN as usize];
        if file_len < HEADER_LEN {
            return format_err("file shorter than the PFDIGEST header");
        }
        crate::io::read_exact_at(io.as_ref(), &mut raw_header, 0, &retry).map_err(|error| {
            StoreError::Unavailable {
                context: "reading the PFDIGEST header".to_string(),
                error,
            }
        })?;
        let header = Header::decode(&raw_header)?;
        let db = header.config.digest_bytes;

        let entry_len = IndexEntry::encoded_len(db) as u64;
        let index_len = header
            .block_count
            .checked_mul(entry_len)
            .ok_or_else(|| StoreError::Format("index size overflows".to_string()))?;
        if header.index_offset < HEADER_LEN
            || header.index_offset.checked_add(index_len) != Some(file_len)
        {
            return format_err("index offset/length disagree with the file size (truncated?)");
        }
        let mut raw_index = vec![0u8; index_len as usize];
        crate::io::read_exact_at(io.as_ref(), &mut raw_index, header.index_offset, &retry)
            .map_err(|error| StoreError::Unavailable {
                context: "reading the block index".to_string(),
                error,
            })?;

        let mut index = Vec::with_capacity(header.block_count as usize);
        let mut total_records = 0u64;
        let mut end_of_prev = HEADER_LEN;
        for chunk in raw_index.chunks_exact(entry_len as usize) {
            let entry = IndexEntry::decode(chunk, db);
            if entry.offset != end_of_prev {
                return format_err("block offsets are not contiguous");
            }
            end_of_prev = entry.offset + u64::from(entry.len);
            if end_of_prev > header.index_offset {
                return format_err("block extends past the index");
            }
            if entry.records == 0 || entry.records as usize > header.config.records_per_block {
                return format_err("block record count out of range");
            }
            if let Some(last) = index.last() {
                let last: &IndexEntry = last;
                if entry.first <= last.first {
                    return format_err("index first-digests are not ascending");
                }
            }
            total_records += u64::from(entry.records);
            index.push(entry);
        }
        if end_of_prev != header.index_offset {
            return format_err("gap between the last block and the index");
        }
        if total_records != header.record_count {
            return format_err("index record counts disagree with the header");
        }

        Ok(DigestStore {
            io,
            retry,
            config: header.config,
            record_count: header.record_count,
            checksum: header.checksum,
            index,
            file_len,
            path,
        })
    }

    /// The artifact's configuration.
    pub fn config(&self) -> DigestConfig {
        self.config
    }

    /// Unique digests stored.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Number of compressed blocks.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Total artifact size in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The path the store was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Overrides the bounded-retry policy applied to positioned reads.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Positioned read through the pluggable io, with bounded retry; the
    /// exhausted/permanent case surfaces as [`StoreError::Unavailable`].
    fn read_exact_at(&self, buf: &mut [u8], offset: u64, context: &str) -> Result<()> {
        crate::io::read_exact_at(self.io.as_ref(), buf, offset, &self.retry).map_err(|error| {
            StoreError::Unavailable {
                context: context.to_string(),
                error,
            }
        })
    }

    /// Reads and decodes block `i` into `out` (cleared first).
    fn decode_block_into(&self, i: usize, out: &mut Vec<(RawDigest, u64)>) -> Result<()> {
        let entry = &self.index[i];
        let mut raw = vec![0u8; entry.len as usize];
        self.read_exact_at(&mut raw, entry.offset, "reading a record block")?;
        out.clear();
        let db = self.config.digest_bytes;
        let mut prev = [0u8; sha1::DIGEST_LEN];
        let mut pos = 0usize;
        for r in 0..entry.records {
            if r == 0 {
                let Some(bytes) = raw.get(..db) else {
                    return format_err("block too short for its first record");
                };
                prev[..db].copy_from_slice(bytes);
                pos = db;
            } else {
                let Some(&shared) = raw.get(pos) else {
                    return format_err("truncated record header in block");
                };
                pos += 1;
                let shared = shared as usize;
                if shared >= db {
                    return format_err("shared-prefix length out of range");
                }
                let Some(suffix) = raw.get(pos..pos + (db - shared)) else {
                    return format_err("truncated record suffix in block");
                };
                prev[shared..db].copy_from_slice(suffix);
                pos += db - shared;
            }
            let count = if self.config.counts {
                read_varint(&raw, &mut pos)?
            } else {
                1
            };
            out.push((prev, count));
        }
        if pos != raw.len() {
            return format_err("trailing bytes after the last record in a block");
        }
        if out.first().map(|(d, _)| *d) != Some(entry.first) {
            return format_err("block's first record disagrees with the index");
        }
        Ok(())
    }

    /// Index of the block that could contain `key`, if any.
    fn block_for(&self, key: &RawDigest) -> Option<usize> {
        let n = self.index.partition_point(|e| e.first <= *key);
        n.checked_sub(1)
    }

    /// Looks up a digest (full or truncated); returns its count, or `None`
    /// if absent. Counts are 1 for membership-only stores.
    ///
    /// # Errors
    ///
    /// I/O or block-decoding failures.
    pub fn contains_digest(&self, digest: &[u8]) -> Result<Option<u64>> {
        let key = truncate_digest(digest, self.config.digest_bytes);
        let Some(block) = self.block_for(&key) else {
            return Ok(None);
        };
        let mut records = Vec::with_capacity(self.config.records_per_block);
        self.decode_block_into(block, &mut records)?;
        Ok(records
            .binary_search_by(|(d, _)| d.cmp(&key))
            .ok()
            .map(|i| records[i].1))
    }

    /// Looks up `SHA1(password)`; the serving screen endpoint and the
    /// offline strength reports share this exact path.
    ///
    /// # Errors
    ///
    /// I/O or block-decoding failures.
    pub fn contains_password(&self, password: &str) -> Result<Option<u64>> {
        self.contains_digest(&sha1::password_digest(password))
    }

    /// K-anonymity range query: all stored records whose digest starts
    /// with `prefix_hex` (1 to `2·digest_bytes` hex characters, any case),
    /// as `(suffix, count)` pairs in ascending digest order.
    ///
    /// # Errors
    ///
    /// [`StoreError::Format`] for an empty, non-hex or too-long prefix;
    /// I/O or block-decoding failures.
    pub fn range(&self, prefix_hex: &str) -> Result<Vec<RangeEntry>> {
        let db = self.config.digest_bytes;
        let Some(nibbles) = sha1::parse_nibbles(prefix_hex) else {
            return format_err(format!("prefix {prefix_hex:?} is not hexadecimal"));
        };
        if nibbles.is_empty() || nibbles.len() > db * 2 {
            return format_err(format!(
                "prefix must be 1..={} hex characters, got {}",
                db * 2,
                nibbles.len()
            ));
        }

        // Bounds of the prefix range: nibbles padded with 0x0 / 0xF.
        let mut lo = [0u8; sha1::DIGEST_LEN];
        let mut hi = [0u8; sha1::DIGEST_LEN];
        hi[..db].fill(0xff);
        for (i, &nib) in nibbles.iter().enumerate() {
            let byte = i / 2;
            if i % 2 == 0 {
                lo[byte] = nib << 4;
                hi[byte] = (nib << 4) | 0x0f;
            } else {
                lo[byte] |= nib;
                hi[byte] = (hi[byte] & 0xf0) | nib;
            }
        }

        let mut out = Vec::new();
        let start = self.block_for(&lo).unwrap_or(0);
        let mut records = Vec::with_capacity(self.config.records_per_block);
        for i in start..self.index.len() {
            if self.index[i].first > hi {
                break;
            }
            self.decode_block_into(i, &mut records)?;
            for (digest, count) in &records {
                if *digest < lo {
                    continue;
                }
                if *digest > hi {
                    break;
                }
                let hex = sha1::to_hex(&digest[..db]);
                out.push(RangeEntry {
                    suffix: hex[nibbles.len()..].to_string(),
                    count: *count,
                });
            }
        }
        Ok(out)
    }

    /// A streaming cursor over every record in ascending order.
    pub fn records(&self) -> RecordCursor<'_> {
        RecordCursor {
            store: self,
            block: 0,
            pos: 0,
            records: Vec::new(),
        }
    }

    /// Fully decodes the artifact, checking sort order, per-block
    /// structure and the header checksum — the deep integrity pass behind
    /// `digest_tool verify`.
    ///
    /// # Errors
    ///
    /// The first structural violation found.
    pub fn verify(&self) -> Result<VerifyReport> {
        let mut cursor = self.records();
        let mut checksum = FNV_SEED;
        let mut count = 0u64;
        let db = self.config.digest_bytes;
        let mut prev: Option<RawDigest> = None;
        while let Some((digest, record_count)) = cursor.next_record()? {
            if let Some(p) = &prev {
                if digest <= *p {
                    return format_err("records are not strictly ascending across blocks");
                }
            }
            checksum = checksum_record(checksum, &digest[..db], record_count);
            prev = Some(digest);
            count += 1;
        }
        if count != self.record_count {
            return format_err(format!(
                "decoded {count} records, header claims {}",
                self.record_count
            ));
        }
        if checksum != self.checksum {
            return format_err("record checksum mismatch (artifact corrupted)");
        }
        Ok(VerifyReport {
            record_count: count,
            block_count: self.index.len() as u64,
            checksum,
        })
    }
}

/// Streaming, block-at-a-time record iteration (used by merge and verify).
pub struct RecordCursor<'a> {
    store: &'a DigestStore,
    block: usize,
    pos: usize,
    records: Vec<(RawDigest, u64)>,
}

impl RecordCursor<'_> {
    /// The next record in ascending digest order, or `None` at the end.
    ///
    /// # Errors
    ///
    /// I/O or block-decoding failures.
    pub fn next_record(&mut self) -> Result<Option<(RawDigest, u64)>> {
        loop {
            if self.pos < self.records.len() {
                let record = self.records[self.pos];
                self.pos += 1;
                return Ok(Some(record));
            }
            if self.block >= self.store.block_count() {
                return Ok(None);
            }
            self.store
                .decode_block_into(self.block, &mut self.records)?;
            self.block += 1;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
        // Truncated varint is an error, not a panic.
        assert!(read_varint(&[0x80], &mut 0).is_err());
    }

    #[test]
    fn header_round_trips() {
        let header = Header {
            config: DigestConfig {
                digest_bytes: 12,
                counts: false,
                records_per_block: 77,
            },
            record_count: 123,
            block_count: 2,
            index_offset: 9_000,
            checksum: 0xdead_beef,
        };
        let decoded = Header::decode(&header.encode()).unwrap();
        assert_eq!(decoded.config, header.config);
        assert_eq!(decoded.record_count, 123);
        assert_eq!(decoded.index_offset, 9_000);
        assert_eq!(decoded.checksum, 0xdead_beef);
        assert!(Header::decode(b"NOTMAGIC........................").is_err());
    }

    #[test]
    fn writer_rejects_unsorted_input() {
        let dir = std::env::temp_dir().join(format!("pfdigest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unsorted.pfd");
        let mut w = ArtifactWriter::create(&path, DigestConfig::default()).unwrap();
        w.push(&[5u8; 20], 1).unwrap();
        assert!(w.push(&[5u8; 20], 1).is_err(), "duplicates rejected");
        assert!(w.push(&[4u8; 20], 1).is_err(), "descending rejected");
        drop(w);
        assert!(!path.exists(), "unfinished writer leaves nothing behind");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
