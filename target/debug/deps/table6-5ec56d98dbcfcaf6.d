/root/repo/target/debug/deps/table6-5ec56d98dbcfcaf6.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-5ec56d98dbcfcaf6: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
