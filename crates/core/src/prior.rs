//! Latent-space prior distributions.
//!
//! The flow is trained against a factorized standard Gaussian prior
//! ([`StandardGaussianPrior`]). Dynamic Sampling (Section III-B) replaces the
//! prior at *sampling* time with a Gaussian mixture centred on the latent
//! images of already-matched passwords ([`GaussianMixturePrior`],
//! Equation 14), weighted by the penalization function φ.

use rand::Rng;

use passflow_nn::rng as nnrng;
use passflow_nn::Tensor;

const LN_2PI: f32 = 1.837_877_1; // ln(2π)

/// A distribution over the latent space that can be sampled and scored.
pub trait Prior {
    /// Dimensionality of the latent space.
    fn dim(&self) -> usize;

    /// Draws `n` samples as an `n × dim` tensor.
    fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Tensor;

    /// Log-density of each row of `z` (natural log).
    fn log_prob(&self, z: &Tensor) -> Vec<f32>;
}

// ---------------------------------------------------------------------------
// Standard Gaussian
// ---------------------------------------------------------------------------

/// The factorized standard normal prior `N(0, I)` used for training and
/// static sampling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StandardGaussianPrior {
    dim: usize,
}

impl StandardGaussianPrior {
    /// Creates a standard Gaussian prior over a `dim`-dimensional space.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "prior dimension must be positive");
        StandardGaussianPrior { dim }
    }
}

impl StandardGaussianPrior {
    /// Draws `n` samples into `out` (resized as needed), consuming the RNG
    /// identically to [`Prior::sample`], so reused buffers give bit-identical
    /// results to fresh allocations.
    pub fn sample_into<R: Rng + ?Sized>(&self, n: usize, rng: &mut R, out: &mut Tensor) {
        Tensor::randn_into(n, self.dim, rng, out);
    }
}

impl Prior for StandardGaussianPrior {
    fn dim(&self) -> usize {
        self.dim
    }

    fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Tensor {
        Tensor::randn(n, self.dim, rng)
    }

    fn log_prob(&self, z: &Tensor) -> Vec<f32> {
        assert_eq!(z.cols(), self.dim, "latent dimension mismatch");
        (0..z.rows())
            .map(|i| {
                let row = z.row_slice(i);
                let sq: f32 = row.iter().map(|v| v * v).sum();
                -0.5 * (sq + self.dim as f32 * LN_2PI)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Gaussian mixture (Equation 14)
// ---------------------------------------------------------------------------

/// A mixture of isotropic Gaussians centred on matched latent points, with
/// per-component weights supplied by the penalization function φ.
///
/// This is the sampling prior of Equation 14:
/// `p_z(z | M) = Σ_i φ(z_i) · N(z_i, σ_i)`.
#[derive(Clone, Debug, PartialEq)]
pub struct GaussianMixturePrior {
    dim: usize,
    centers: Vec<Vec<f32>>,
    sigmas: Vec<f32>,
    weights: Vec<f32>,
}

impl GaussianMixturePrior {
    /// Creates a mixture from component centres, a shared standard deviation
    /// and per-component weights.
    ///
    /// Weights are normalized internally; components with zero weight are
    /// retained (they simply never get sampled), which keeps component
    /// indices stable for the caller.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty, have mismatched lengths, if `sigma`
    /// is not positive, or if all weights are zero.
    pub fn new(centers: Vec<Vec<f32>>, sigma: f32, weights: Vec<f32>) -> Self {
        assert!(!centers.is_empty(), "mixture needs at least one component");
        assert_eq!(
            centers.len(),
            weights.len(),
            "one weight per component required"
        );
        assert!(sigma > 0.0, "sigma must be positive");
        let dim = centers[0].len();
        assert!(dim > 0, "component dimension must be positive");
        assert!(
            centers.iter().all(|c| c.len() == dim),
            "all components must share the same dimension"
        );
        assert!(
            weights.iter().all(|w| *w >= 0.0),
            "weights must be non-negative"
        );
        let total: f32 = weights.iter().sum();
        assert!(
            total > 0.0,
            "at least one component must have positive weight"
        );
        let sigmas = vec![sigma; centers.len()];
        let weights = weights.into_iter().map(|w| w / total).collect();
        GaussianMixturePrior {
            dim,
            centers,
            sigmas,
            weights,
        }
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.centers.len()
    }

    /// Normalized component weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Per-component standard deviations.
    pub fn sigmas(&self) -> &[f32] {
        &self.sigmas
    }

    /// Draws `n` samples into `out` (resized as needed), consuming the RNG
    /// identically to [`Prior::sample`], so reused buffers give bit-identical
    /// results to fresh allocations.
    pub fn sample_into<R: Rng + ?Sized>(&self, n: usize, rng: &mut R, out: &mut Tensor) {
        out.resize(n, self.dim);
        for i in 0..n {
            let k = nnrng::sample_discrete(&self.weights, rng);
            let center = &self.centers[k];
            let sigma = self.sigmas[k];
            for (j, &c) in center.iter().enumerate() {
                out.set(i, j, c + sigma * nnrng::standard_normal(rng));
            }
        }
    }
}

impl Prior for GaussianMixturePrior {
    fn dim(&self) -> usize {
        self.dim
    }

    fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Tensor {
        let mut out = Tensor::zeros(n, self.dim);
        for i in 0..n {
            let k = nnrng::sample_discrete(&self.weights, rng);
            let center = &self.centers[k];
            let sigma = self.sigmas[k];
            for (j, &c) in center.iter().enumerate() {
                out.set(i, j, c + sigma * nnrng::standard_normal(rng));
            }
        }
        out
    }

    fn log_prob(&self, z: &Tensor) -> Vec<f32> {
        assert_eq!(z.cols(), self.dim, "latent dimension mismatch");
        (0..z.rows())
            .map(|i| {
                let row = z.row_slice(i);
                // log Σ_k w_k N(row; c_k, σ_k² I) via log-sum-exp.
                let mut terms = Vec::with_capacity(self.centers.len());
                for (k, center) in self.centers.iter().enumerate() {
                    if self.weights[k] == 0.0 {
                        continue;
                    }
                    let sigma = self.sigmas[k];
                    let sq: f32 = row
                        .iter()
                        .zip(center.iter())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    let log_norm = -(self.dim as f32) * (sigma.ln() + 0.5 * LN_2PI)
                        - 0.5 * sq / (sigma * sigma);
                    terms.push(self.weights[k].ln() + log_norm);
                }
                // Explicit compare: `fold(…, f32::max)` miscompiles under
                // `-C target-cpu=native` on AVX-512 hosts (see Tensor::max).
                let mut max = f32::NEG_INFINITY;
                for &t in &terms {
                    if t > max {
                        max = t;
                    }
                }
                max + terms.iter().map(|t| (t - max).exp()).sum::<f32>().ln()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_gaussian_log_prob_matches_formula() {
        let prior = StandardGaussianPrior::new(2);
        let z = Tensor::from_rows(&[vec![0.0, 0.0], vec![1.0, -1.0]]);
        let lp = prior.log_prob(&z);
        // At the origin: -0.5 * 2 * ln(2π).
        assert!((lp[0] + LN_2PI).abs() < 1e-5);
        assert!((lp[1] + LN_2PI + 1.0).abs() < 1e-5);
        assert!(lp[0] > lp[1]);
    }

    #[test]
    fn standard_gaussian_samples_have_unit_moments() {
        let prior = StandardGaussianPrior::new(10);
        let mut rng = nnrng::seeded(3);
        let z = prior.sample(2_000, &mut rng);
        assert_eq!(z.shape(), (2_000, 10));
        assert!(z.mean().abs() < 0.05);
        let var = z.square().mean() - z.mean() * z.mean();
        assert!((var - 1.0).abs() < 0.1);
    }

    #[test]
    fn mixture_sampling_concentrates_near_centers() {
        let centers = vec![vec![5.0, 5.0], vec![-5.0, -5.0]];
        let prior = GaussianMixturePrior::new(centers, 0.1, vec![1.0, 1.0]);
        let mut rng = nnrng::seeded(4);
        let z = prior.sample(500, &mut rng);
        let mut near_pos = 0;
        let mut near_neg = 0;
        for i in 0..z.rows() {
            let row = z.row_slice(i);
            if row[0] > 4.0 && row[1] > 4.0 {
                near_pos += 1;
            } else if row[0] < -4.0 && row[1] < -4.0 {
                near_neg += 1;
            }
        }
        assert_eq!(near_pos + near_neg, 500);
        assert!(near_pos > 150 && near_neg > 150);
    }

    #[test]
    fn mixture_respects_zero_weights() {
        let centers = vec![vec![5.0, 5.0], vec![-5.0, -5.0]];
        let prior = GaussianMixturePrior::new(centers, 0.1, vec![1.0, 0.0]);
        let mut rng = nnrng::seeded(5);
        let z = prior.sample(200, &mut rng);
        for i in 0..z.rows() {
            assert!(z.get(i, 0) > 0.0, "sample drawn from zero-weight component");
        }
        assert_eq!(prior.num_components(), 2);
        assert_eq!(prior.weights(), &[1.0, 0.0]);
    }

    #[test]
    fn mixture_log_prob_is_higher_near_centers() {
        let prior = GaussianMixturePrior::new(vec![vec![2.0, 0.0]], 0.5, vec![1.0]);
        let z = Tensor::from_rows(&[vec![2.0, 0.0], vec![0.0, 0.0]]);
        let lp = prior.log_prob(&z);
        assert!(lp[0] > lp[1]);
        assert_eq!(prior.sigmas(), &[0.5]);
    }

    #[test]
    fn mixture_log_prob_agrees_with_single_gaussian() {
        // A one-component mixture with σ=1 centred at the origin must equal
        // the standard Gaussian density.
        let mixture = GaussianMixturePrior::new(vec![vec![0.0; 3]], 1.0, vec![1.0]);
        let standard = StandardGaussianPrior::new(3);
        let z = Tensor::from_rows(&[vec![0.3, -0.2, 1.1], vec![0.0, 0.0, 0.0]]);
        let a = mixture.log_prob(&z);
        let b = standard.log_prob(&z);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn mixture_weights_are_normalized() {
        let prior = GaussianMixturePrior::new(vec![vec![0.0], vec![1.0]], 1.0, vec![2.0, 6.0]);
        assert!((prior.weights()[0] - 0.25).abs() < 1e-6);
        assert!((prior.weights()[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn all_zero_weights_rejected() {
        let _ = GaussianMixturePrior::new(vec![vec![0.0]], 1.0, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "same dimension")]
    fn mismatched_center_dims_rejected() {
        let _ = GaussianMixturePrior::new(vec![vec![0.0], vec![0.0, 1.0]], 1.0, vec![1.0, 1.0]);
    }
}
