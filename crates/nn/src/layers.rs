//! Neural-network layers.
//!
//! The layer set is intentionally small: PassFlow's coupling functions `s`
//! and `t` are residual MLPs ([`ResNet`]), and the GAN/CWAE baselines are
//! plain MLPs ([`Sequential`] of [`Linear`] + [`Activation`]). All layers
//! implement [`Module`], which is object-safe so heterogeneous stacks can be
//! stored as `Vec<Box<dyn Module>>`.

use rand::Rng;
use std::fmt;

use crate::autograd::{Parameter, Tape, Var};
use crate::init;
use crate::snapshot::{BlockSnapshot, LinearSnapshot, ResNetSnapshot, WeightSnapshot};
use crate::tensor::Tensor;

/// A differentiable network component.
///
/// A module owns its [`Parameter`]s and maps an input [`Var`] to an output
/// [`Var`] on the same tape.
///
/// `Send + Sync` are supertraits so trained models (which store layers as
/// `Box<dyn Module>`) can be shared across the attack engine's shard
/// threads; every parameter already lives behind an `Arc<RwLock>`.
pub trait Module: Send + Sync {
    /// Runs the forward pass, recording operations on `tape`.
    fn forward(&self, tape: &Tape, input: &Var) -> Var;

    /// Runs the forward pass directly on tensors without recording a tape.
    ///
    /// This is the inference path used by the flow's sampling loops, where
    /// millions of guesses are generated and autograd bookkeeping would be
    /// pure overhead. The result must be numerically identical to
    /// [`Module::forward`].
    fn forward_tensor(&self, input: &Tensor) -> Tensor;

    /// Returns handles to every trainable parameter of the module.
    fn parameters(&self) -> Vec<Parameter>;

    /// Total number of trainable scalars.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(Parameter::len).sum()
    }

    /// Sets all parameter gradients to zero.
    fn zero_grad(&self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }

    /// Exports an owned, immutable snapshot of the module's weights for the
    /// inference fast path, or `None` if the module does not support
    /// snapshotting.
    ///
    /// The snapshot's `forward_into` is bit-exact with
    /// [`Module::forward_tensor`] but reads weights directly (no per-call
    /// lock/clone) and writes activations into reusable scratch buffers.
    /// All built-in layers snapshot; the default keeps custom modules
    /// compiling without one.
    fn export_snapshot(&self) -> Option<WeightSnapshot> {
        None
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// A fully connected layer: `y = x W + b`.
#[derive(Clone)]
pub struct Linear {
    weight: Parameter,
    bias: Parameter,
    in_features: usize,
    out_features: usize,
}

impl fmt::Debug for Linear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Linear({} -> {})", self.in_features, self.out_features)
    }
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Self::with_weight(
            init::xavier_uniform(in_features, out_features, rng),
            in_features,
            out_features,
        )
    }

    /// Creates a layer with He-normal weights (for ReLU stacks) and zero bias.
    pub fn new_relu<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Self::with_weight(
            init::he_normal(in_features, out_features, rng),
            in_features,
            out_features,
        )
    }

    /// Creates a layer whose weights start near zero, so the layer initially
    /// outputs (approximately) only its bias. Used for the final projection
    /// of flow scale networks.
    pub fn new_near_zero<R: Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Self {
        Self::with_weight(
            init::near_zero(in_features, out_features, rng),
            in_features,
            out_features,
        )
    }

    fn with_weight(weight: Tensor, in_features: usize, out_features: usize) -> Self {
        Linear {
            weight: Parameter::new(weight, "linear.weight"),
            bias: Parameter::new(Tensor::zeros(1, out_features), "linear.bias"),
            in_features,
            out_features,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Direct access to the weight parameter.
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// Direct access to the bias parameter.
    pub fn bias(&self) -> &Parameter {
        &self.bias
    }

    /// Copies the current weights into an owned [`LinearSnapshot`].
    pub fn snapshot(&self) -> LinearSnapshot {
        LinearSnapshot::new(self.weight.value(), self.bias.value())
    }
}

impl Module for Linear {
    fn forward(&self, tape: &Tape, input: &Var) -> Var {
        let w = tape.param(&self.weight);
        let b = tape.param(&self.bias);
        input.matmul(&w).add_row(&b)
    }

    fn forward_tensor(&self, input: &Tensor) -> Tensor {
        input
            .matmul(&self.weight.value())
            .add_row_broadcast(&self.bias.value())
    }

    fn parameters(&self) -> Vec<Parameter> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    fn export_snapshot(&self) -> Option<WeightSnapshot> {
        Some(WeightSnapshot::Linear(self.snapshot()))
    }
}

// ---------------------------------------------------------------------------
// Activation
// ---------------------------------------------------------------------------

/// The supported pointwise nonlinearities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivationKind {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// A parameter-free activation layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Activation {
    kind: ActivationKind,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Activation { kind }
    }

    /// The nonlinearity applied by this layer.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }
}

impl Module for Activation {
    fn forward(&self, _tape: &Tape, input: &Var) -> Var {
        match self.kind {
            ActivationKind::Relu => input.relu(),
            ActivationKind::Tanh => input.tanh(),
            ActivationKind::Sigmoid => input.sigmoid(),
        }
    }

    fn forward_tensor(&self, input: &Tensor) -> Tensor {
        match self.kind {
            ActivationKind::Relu => input.relu(),
            ActivationKind::Tanh => input.tanh(),
            ActivationKind::Sigmoid => input.sigmoid(),
        }
    }

    fn parameters(&self) -> Vec<Parameter> {
        Vec::new()
    }

    fn export_snapshot(&self) -> Option<WeightSnapshot> {
        Some(WeightSnapshot::Activation(self.kind))
    }
}

// ---------------------------------------------------------------------------
// Residual block
// ---------------------------------------------------------------------------

/// A two-layer residual block: `y = x + W2 · act(W1 · x + b1) + b2`.
///
/// The input and output width must match; this is the building block of the
/// paper's `s` and `t` coupling networks (Section IV-D: "2 residual blocks
/// with a hidden size of 256 units").
#[derive(Clone, Debug)]
pub struct ResidualBlock {
    fc1: Linear,
    fc2: Linear,
    activation: Activation,
}

impl ResidualBlock {
    /// Creates a residual block operating on `width`-dimensional features
    /// with a hidden layer of `hidden` units.
    pub fn new<R: Rng + ?Sized>(width: usize, hidden: usize, rng: &mut R) -> Self {
        ResidualBlock {
            fc1: Linear::new_relu(width, hidden, rng),
            fc2: Linear::new(hidden, width, rng),
            activation: Activation::new(ActivationKind::Relu),
        }
    }

    /// Feature width preserved by the block.
    pub fn width(&self) -> usize {
        self.fc1.in_features()
    }

    /// Copies the block's weights into an owned [`BlockSnapshot`].
    pub fn snapshot(&self) -> BlockSnapshot {
        BlockSnapshot {
            fc1: self.fc1.snapshot(),
            fc2: self.fc2.snapshot(),
            activation: self.activation.kind(),
        }
    }
}

impl Module for ResidualBlock {
    fn forward(&self, tape: &Tape, input: &Var) -> Var {
        let hidden = self.fc1.forward(tape, input);
        let hidden = self.activation.forward(tape, &hidden);
        let out = self.fc2.forward(tape, &hidden);
        input.add(&out)
    }

    fn forward_tensor(&self, input: &Tensor) -> Tensor {
        let hidden = self.fc1.forward_tensor(input);
        let hidden = self.activation.forward_tensor(&hidden);
        let out = self.fc2.forward_tensor(&hidden);
        input.add(&out)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut params = self.fc1.parameters();
        params.extend(self.fc2.parameters());
        params
    }

    fn export_snapshot(&self) -> Option<WeightSnapshot> {
        Some(WeightSnapshot::Residual(Box::new(self.snapshot())))
    }
}

// ---------------------------------------------------------------------------
// ResNet (the s/t coupling networks)
// ---------------------------------------------------------------------------

/// A residual MLP: input projection, `n` residual blocks, output projection.
///
/// This is the architecture the paper uses for the scale (`s`) and
/// translation (`t`) functions of each coupling layer.
#[derive(Clone, Debug)]
pub struct ResNet {
    input: Linear,
    blocks: Vec<ResidualBlock>,
    output: Linear,
    output_tanh: bool,
}

impl ResNet {
    /// Creates a residual network mapping `in_features` to `out_features`
    /// through `num_blocks` residual blocks of `hidden` units.
    ///
    /// When `bounded_output` is true the output is passed through `tanh`;
    /// the paper's scale network needs a bounded output so that
    /// `exp(s(·))` stays numerically stable, while the translation network
    /// is unbounded.
    pub fn new<R: Rng + ?Sized>(
        in_features: usize,
        hidden: usize,
        out_features: usize,
        num_blocks: usize,
        bounded_output: bool,
        rng: &mut R,
    ) -> Self {
        let input = Linear::new_relu(in_features, hidden, rng);
        let blocks = (0..num_blocks)
            .map(|_| ResidualBlock::new(hidden, hidden, rng))
            .collect();
        let output = if bounded_output {
            Linear::new_near_zero(hidden, out_features, rng)
        } else {
            Linear::new(hidden, out_features, rng)
        };
        ResNet {
            input,
            blocks,
            output,
            output_tanh: bounded_output,
        }
    }

    /// Number of residual blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the output is squashed through `tanh`.
    pub fn has_bounded_output(&self) -> bool {
        self.output_tanh
    }

    /// Copies the network's weights into an owned [`ResNetSnapshot`].
    pub fn snapshot(&self) -> ResNetSnapshot {
        ResNetSnapshot::new(
            self.input.snapshot(),
            self.blocks.iter().map(ResidualBlock::snapshot).collect(),
            self.output.snapshot(),
            self.output_tanh,
        )
    }
}

impl Module for ResNet {
    fn forward(&self, tape: &Tape, input: &Var) -> Var {
        let mut x = self.input.forward(tape, input).relu();
        for block in &self.blocks {
            x = block.forward(tape, &x);
        }
        let out = self.output.forward(tape, &x);
        if self.output_tanh {
            out.tanh()
        } else {
            out
        }
    }

    fn forward_tensor(&self, input: &Tensor) -> Tensor {
        let mut x = self.input.forward_tensor(input).relu();
        for block in &self.blocks {
            x = block.forward_tensor(&x);
        }
        let out = self.output.forward_tensor(&x);
        if self.output_tanh {
            out.tanh()
        } else {
            out
        }
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut params = self.input.parameters();
        for block in &self.blocks {
            params.extend(block.parameters());
        }
        params.extend(self.output.parameters());
        params
    }

    fn export_snapshot(&self) -> Option<WeightSnapshot> {
        Some(WeightSnapshot::Net(Box::new(self.snapshot())))
    }
}

// ---------------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------------

/// A stack of modules applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl fmt::Debug for Sequential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer, returning `self` for chaining.
    #[must_use]
    pub fn push(mut self, layer: impl Module + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers in the stack.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the stack contains no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, tape: &Tape, input: &Var) -> Var {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(tape, &x);
        }
        x
    }

    fn forward_tensor(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward_tensor(&x);
        }
        x
    }

    fn parameters(&self) -> Vec<Parameter> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }

    fn export_snapshot(&self) -> Option<WeightSnapshot> {
        self.layers
            .iter()
            .map(|l| l.export_snapshot())
            .collect::<Option<Vec<_>>>()
            .map(WeightSnapshot::Stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut r = rng();
        let layer = Linear::new(4, 3, &mut r);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(5, 4));
        let y = layer.forward(&tape, &x);
        assert_eq!(y.shape(), (5, 3));
        // With zero input the output equals the (zero) bias.
        assert_eq!(y.value().sum(), 0.0);
    }

    #[test]
    fn linear_has_two_parameters() {
        let mut r = rng();
        let layer = Linear::new(4, 3, &mut r);
        assert_eq!(layer.parameters().len(), 2);
        assert_eq!(layer.num_parameters(), 4 * 3 + 3);
        assert_eq!(layer.in_features(), 4);
        assert_eq!(layer.out_features(), 3);
    }

    #[test]
    fn activation_kinds_apply_expected_function() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::row(&[-2.0, 2.0]));
        let relu = Activation::new(ActivationKind::Relu).forward(&tape, &x);
        assert_eq!(relu.value().as_slice(), &[0.0, 2.0]);
        let tanh = Activation::new(ActivationKind::Tanh).forward(&tape, &x);
        assert!((tanh.value().get(0, 1) - 2.0f32.tanh()).abs() < 1e-6);
        let sig = Activation::new(ActivationKind::Sigmoid).forward(&tape, &x);
        assert!(sig.value().get(0, 0) < 0.5 && sig.value().get(0, 1) > 0.5);
    }

    #[test]
    fn residual_block_preserves_width_and_adds_skip() {
        let mut r = rng();
        let block = ResidualBlock::new(6, 16, &mut r);
        assert_eq!(block.width(), 6);
        let tape = Tape::new();
        let x = tape.constant(Tensor::randn(3, 6, &mut r));
        let y = block.forward(&tape, &x);
        assert_eq!(y.shape(), (3, 6));
        // With zero weights in fc2's bias the skip connection guarantees the
        // output is not identically zero for nonzero input.
        assert!(y.value().abs().sum() > 0.0);
    }

    #[test]
    fn resnet_shapes_and_bounded_output() {
        let mut r = rng();
        let net = ResNet::new(10, 32, 10, 2, true, &mut r);
        assert_eq!(net.num_blocks(), 2);
        assert!(net.has_bounded_output());
        let tape = Tape::new();
        let x = tape.constant(Tensor::randn(4, 10, &mut r));
        let y = net.forward(&tape, &x);
        assert_eq!(y.shape(), (4, 10));
        assert!(y.value().max() <= 1.0 && y.value().min() >= -1.0);
    }

    #[test]
    fn resnet_unbounded_output_is_not_squashed() {
        let mut r = rng();
        let net = ResNet::new(4, 8, 4, 1, false, &mut r);
        assert!(!net.has_bounded_output());
        let tape = Tape::new();
        let x = tape.constant(Tensor::randn(2, 4, &mut r).scale(10.0));
        let y = net.forward(&tape, &x);
        assert_eq!(y.shape(), (2, 4));
    }

    #[test]
    fn sequential_composes_layers() {
        let mut r = rng();
        let net = Sequential::new()
            .push(Linear::new(4, 8, &mut r))
            .push(Activation::new(ActivationKind::Relu))
            .push(Linear::new(8, 2, &mut r));
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
        let tape = Tape::new();
        let x = tape.constant(Tensor::randn(7, 4, &mut r));
        let y = net.forward(&tape, &x);
        assert_eq!(y.shape(), (7, 2));
        assert_eq!(net.parameters().len(), 4);
    }

    #[test]
    fn gradients_flow_through_resnet() {
        let mut r = rng();
        let net = ResNet::new(6, 16, 6, 2, false, &mut r);
        let tape = Tape::new();
        let x = tape.constant(Tensor::randn(5, 6, &mut r));
        let loss = net.forward(&tape, &x).square().mean();
        net.zero_grad();
        loss.backward();
        let total_grad: f32 = net.parameters().iter().map(|p| p.grad().abs().sum()).sum();
        assert!(total_grad > 0.0, "expected nonzero gradients");
    }

    #[test]
    fn forward_tensor_matches_taped_forward() {
        let mut r = rng();
        let net = ResNet::new(6, 16, 6, 2, true, &mut r);
        let x = Tensor::randn(5, 6, &mut r);
        let tape = Tape::new();
        let taped = net.forward(&tape, &tape.constant(x.clone())).value();
        let direct = net.forward_tensor(&x);
        assert!(taped.approx_eq(&direct, 1e-6));

        let seq = Sequential::new()
            .push(Linear::new(6, 12, &mut r))
            .push(Activation::new(ActivationKind::Tanh))
            .push(Linear::new(12, 3, &mut r));
        let tape = Tape::new();
        let taped = seq.forward(&tape, &tape.constant(x.clone())).value();
        assert!(taped.approx_eq(&seq.forward_tensor(&x), 1e-6));
    }

    #[test]
    fn zero_grad_resets_all_parameters() {
        let mut r = rng();
        let net = ResNet::new(4, 8, 4, 1, false, &mut r);
        let tape = Tape::new();
        let x = tape.constant(Tensor::randn(2, 4, &mut r));
        net.forward(&tape, &x).sum().backward();
        net.zero_grad();
        for p in net.parameters() {
            assert_eq!(p.grad().abs().sum(), 0.0);
        }
    }
}
