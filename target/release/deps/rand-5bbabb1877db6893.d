/root/repo/target/release/deps/rand-5bbabb1877db6893.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-5bbabb1877db6893.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-5bbabb1877db6893.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
