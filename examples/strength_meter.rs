//! Using PassFlow's exact densities as a password-strength meter.
//!
//! Unlike GANs, a normalizing flow assigns an exact log-likelihood to any
//! password. A password that the model (trained on leaked human passwords)
//! considers likely is exactly the kind of password a data-driven attacker
//! will try early — so `-log p(x)` is a principled strength estimate, the
//! application suggested by Melicher et al. and enabled "for free" by the
//! flow's exact inference.
//!
//! ```text
//! cargo run --release --example strength_meter
//! ```

use passflow::{train, CorpusConfig, FlowConfig, PassFlow, SyntheticCorpusGenerator, TrainConfig};
use rand::SeedableRng;

fn classify(nll: f32, weakest: f32, strongest: f32) -> &'static str {
    let position = (nll - weakest) / (strongest - weakest).max(1e-6);
    match position {
        p if p < 0.25 => "very weak",
        p if p < 0.5 => "weak",
        p if p < 0.75 => "moderate",
        _ => "strong",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small()).generate(13);
    let split = corpus.paper_split(0.8, 5_000, 13);

    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let flow = PassFlow::new(FlowConfig::tiny(), &mut rng)?;
    train(&flow, &split.train, &TrainConfig::tiny().with_epochs(6))?;

    let candidates = [
        "123456",
        "jessica1",
        "jimmy91",
        "Summer2009",
        "tr0ub4dor",
        "zq!7Kp#2vX",
    ];

    // Scores are negative log-likelihoods in nats: higher = less likely under
    // the human-password distribution = stronger against this attack model.
    let scores: Vec<(String, f32)> = candidates
        .iter()
        .filter_map(|p| flow.log_prob_password(p).map(|lp| (p.to_string(), -lp)))
        .collect();
    let weakest = scores.iter().map(|(_, s)| *s).fold(f32::INFINITY, f32::min);
    let strongest = scores
        .iter()
        .map(|(_, s)| *s)
        .fold(f32::NEG_INFINITY, f32::max);

    println!("{:<14} {:>12}  verdict", "password", "-log p (nats)");
    let mut sorted = scores.clone();
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (password, nll) in sorted {
        println!(
            "{password:<14} {nll:>12.2}  {}",
            classify(nll, weakest, strongest)
        );
    }

    println!(
        "\nlow -log p means the trained flow puts real probability mass on the password,\n\
         i.e. a generative guessing attack will reach it quickly."
    );
    Ok(())
}
