//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand` API the reproduction actually uses:
//! [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] with `seed_from_u64`, [`rngs::StdRng`] (a xoshiro256++
//! generator), [`seq::SliceRandom::shuffle`] and
//! [`distributions::Uniform`].
//!
//! Determinism is the only contract the reproduction relies on — the same
//! seed always yields the same stream — so swapping this shim for the real
//! crate changes the sampled numbers but no test or experiment semantics.

#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of raw random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

mod sealed {
    use super::RngCore;

    /// Values that `Rng::gen` can produce (the `Standard` distribution).
    pub trait Standard {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }
    impl Standard for u64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }
    impl Standard for usize {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }
    impl Standard for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }
    impl Standard for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 24 random mantissa bits in [0, 1).
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
    impl Standard for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 random mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Ranges that `Rng::gen_range` accepts.
    pub trait SampleRange<T> {
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }
}

use sealed::{SampleRange, Standard};

/// Rejection-free bounded integer sampling (Lemire-style multiply-shift).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the full integer range, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded through
    /// SplitMix64, matching the statistical quality the reproduction needs
    /// (it never uses randomness for cryptographic purposes).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = ((rng.next_u64() as u128 * (self.len() as u128)) >> 64) as usize;
                self.get(i)
            }
        }
    }
}

pub mod distributions {
    //! Distribution sampling (the `Uniform` slice of the real crate).

    use super::Rng;

    /// Types that can produce samples of `T` given a generator.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Creates a uniform distribution over `[lo, hi)`.
        ///
        /// # Panics
        ///
        /// Panics if `lo >= hi`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi }
        }
    }

    impl Distribution<f32> for Uniform<f32> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
            self.lo + unit * (self.hi - self.lo)
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.lo + unit * (self.hi - self.lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=9u8);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut values: Vec<u32> = (0..100).collect();
        values.shuffle(&mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(values, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..10u32);
        assert!(v < 10);
    }
}
