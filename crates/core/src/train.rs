//! Maximum-likelihood training of a [`PassFlow`] model (Equation 8).
//!
//! The trainer encodes the password corpus, adds uniform dequantization
//! noise (the encodings are discrete points; sub-quantization noise makes
//! the density-estimation problem well-posed without changing what the
//! vectors decode to), and minimizes the exact negative log-likelihood with
//! Adam — the paper's Section IV-D setup.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use passflow_nn::rng as nnrng;
use passflow_nn::{Adam, Optimizer, Tape, Tensor};

use crate::config::TrainConfig;
use crate::error::{FlowError, Result};
use crate::flow::PassFlow;

/// Per-epoch record of the training loss.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training NLL over the epoch's batches (nats per password).
    pub train_nll: f32,
}

/// Summary of a training run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Loss trajectory, one entry per epoch.
    pub epochs: Vec<EpochStats>,
    /// Number of encoded training examples actually used.
    pub num_examples: usize,
    /// Index of the epoch with the lowest training NLL. The paper picks
    /// "the best performing epoch" for generation; with a snapshot taken at
    /// this epoch the same policy is available here.
    pub best_epoch: usize,
}

impl TrainingReport {
    /// Final (last-epoch) training NLL.
    pub fn final_nll(&self) -> f32 {
        self.epochs.last().map(|e| e.train_nll).unwrap_or(f32::NAN)
    }

    /// Lowest training NLL reached.
    pub fn best_nll(&self) -> f32 {
        self.epochs
            .iter()
            .map(|e| e.train_nll)
            .fold(f32::INFINITY, f32::min)
    }
}

/// Trains a flow on a password corpus with the paper's NLL objective.
///
/// The model's parameters are updated in place; the best-epoch weight
/// snapshot is restored at the end of training (mirroring the paper's
/// "we pick the best performing epoch").
///
/// # Errors
///
/// * [`FlowError::InvalidConfig`] if the training configuration is invalid.
/// * [`FlowError::EmptyTrainingSet`] if no password could be encoded.
/// * [`FlowError::Diverged`] if the loss becomes non-finite.
pub fn train(
    flow: &PassFlow,
    passwords: &[String],
    config: &TrainConfig,
) -> Result<TrainingReport> {
    config.validate()?;
    let data = flow.encode_batch(passwords)?;
    let mut rng = nnrng::seeded(config.seed);
    let mut optimizer = Adam::new(config.learning_rate);
    if let Some(clip) = config.clip_norm {
        optimizer = optimizer.with_clip_norm(clip);
    }
    let parameters = flow.parameters();
    let noise_amplitude = config.dequantization * flow.encoder().quantization_step();

    let num_examples = data.rows();
    let mut indices: Vec<usize> = (0..num_examples).collect();
    let mut epochs = Vec::with_capacity(config.epochs);
    let mut best_epoch = 0usize;
    let mut best_nll = f32::INFINITY;
    let mut best_weights = flow.weight_snapshot();

    for epoch in 0..config.epochs {
        indices.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut num_batches = 0usize;
        for chunk in indices.chunks(config.batch_size) {
            let batch = dequantize(&data.select_rows(chunk), noise_amplitude, &mut rng);
            let tape = Tape::new();
            let loss = flow.nll_loss(&tape, &batch);
            let loss_value = loss.value().get(0, 0);
            if !loss_value.is_finite() {
                return Err(FlowError::Diverged { epoch });
            }
            loss.backward();
            optimizer.step(&parameters);
            epoch_loss += f64::from(loss_value);
            num_batches += 1;
        }
        let train_nll = (epoch_loss / num_batches.max(1) as f64) as f32;
        if train_nll < best_nll {
            best_nll = train_nll;
            best_epoch = epoch;
            best_weights = flow.weight_snapshot();
        }
        epochs.push(EpochStats { epoch, train_nll });
    }

    // Restore the best-performing epoch, as the paper does for generation.
    flow.load_weights(&best_weights)?;

    Ok(TrainingReport {
        epochs,
        num_examples,
        best_epoch,
    })
}

/// Adds uniform noise in `[-amplitude, amplitude)` to every element.
fn dequantize<R: Rng + ?Sized>(batch: &Tensor, amplitude: f32, rng: &mut R) -> Tensor {
    if amplitude == 0.0 {
        return batch.clone();
    }
    let noise = Tensor::rand_uniform(batch.rows(), batch.cols(), -amplitude, amplitude, rng);
    batch.add(&noise)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlowConfig, TrainConfig};
    use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};

    fn tiny_flow(seed: u64) -> PassFlow {
        let mut rng = nnrng::seeded(seed);
        PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
    }

    fn tiny_corpus(n: usize) -> Vec<String> {
        SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(n))
            .generate(31)
            .into_passwords()
    }

    #[test]
    fn training_reduces_nll() {
        let flow = tiny_flow(1);
        let passwords = tiny_corpus(600);
        let held_out = flow.encode_batch(&tiny_corpus(200)).unwrap();
        let before = flow.nll(&held_out);
        let report = train(
            &flow,
            &passwords,
            &TrainConfig::tiny().with_epochs(5).with_batch_size(128),
        )
        .unwrap();
        let after = flow.nll(&held_out);
        assert!(
            after < before,
            "expected NLL to drop: before {before}, after {after}"
        );
        assert_eq!(report.epochs.len(), 5);
        assert!(report.final_nll().is_finite());
        assert!(report.best_nll() <= report.final_nll() + 1e-6);
        assert!(report.num_examples > 0);
    }

    #[test]
    fn training_loss_trajectory_is_decreasing_overall() {
        let flow = tiny_flow(2);
        let passwords = tiny_corpus(500);
        let report = train(
            &flow,
            &passwords,
            &TrainConfig::tiny().with_epochs(6).with_batch_size(128),
        )
        .unwrap();
        let first = report.epochs.first().unwrap().train_nll;
        let last = report.epochs.last().unwrap().train_nll;
        assert!(last < first, "first {first}, last {last}");
    }

    #[test]
    fn best_epoch_weights_are_restored() {
        let flow = tiny_flow(3);
        let passwords = tiny_corpus(400);
        let report = train(
            &flow,
            &passwords,
            &TrainConfig::tiny().with_epochs(4).with_batch_size(128),
        )
        .unwrap();
        // The training NLL measured after restore must be close to the best
        // epoch's NLL (not exactly equal: the recorded value is a running
        // batch average with fresh dequantization noise).
        let data = flow.encode_batch(&passwords).unwrap();
        let restored_nll = flow.nll(&data);
        let best = report.best_nll();
        assert!(
            (restored_nll - best).abs() < 1.5,
            "restored {restored_nll}, best {best}"
        );
    }

    #[test]
    fn invalid_config_and_empty_corpus_are_rejected() {
        let flow = tiny_flow(4);
        let passwords = tiny_corpus(50);
        assert!(matches!(
            train(&flow, &passwords, &TrainConfig::tiny().with_epochs(0)),
            Err(FlowError::InvalidConfig(_))
        ));
        assert!(matches!(
            train(&flow, &[], &TrainConfig::tiny()),
            Err(FlowError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let passwords = tiny_corpus(300);
        let run = |seed| {
            let flow = tiny_flow(7);
            let report = train(
                &flow,
                &passwords,
                &TrainConfig::tiny()
                    .with_epochs(2)
                    .with_batch_size(128)
                    .with_seed(seed),
            )
            .unwrap();
            report.final_nll()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn dequantize_preserves_decoding() {
        let flow = tiny_flow(8);
        let passwords = vec!["jessica1".to_string(), "dragon99".to_string()];
        let x = flow.encode_batch(&passwords).unwrap();
        let mut rng = nnrng::seeded(9);
        let noisy = dequantize(&x, flow.encoder().quantization_step() * 0.99, &mut rng);
        assert_eq!(flow.decode_batch(&noisy), passwords);
        let clean = dequantize(&x, 0.0, &mut rng);
        assert_eq!(clean, x);
    }
}
