/root/repo/target/debug/deps/passflow_nn-37325c1239d57453.d: crates/nn/src/lib.rs crates/nn/src/autograd.rs crates/nn/src/error.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/rng.rs crates/nn/src/tensor.rs

/root/repo/target/debug/deps/libpassflow_nn-37325c1239d57453.rlib: crates/nn/src/lib.rs crates/nn/src/autograd.rs crates/nn/src/error.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/rng.rs crates/nn/src/tensor.rs

/root/repo/target/debug/deps/libpassflow_nn-37325c1239d57453.rmeta: crates/nn/src/lib.rs crates/nn/src/autograd.rs crates/nn/src/error.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/rng.rs crates/nn/src/tensor.rs

crates/nn/src/lib.rs:
crates/nn/src/autograd.rs:
crates/nn/src/error.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/rng.rs:
crates/nn/src/tensor.rs:
