//! # passflow-bench
//!
//! The benchmark harness of the PassFlow reproduction. Two kinds of targets
//! live in this crate:
//!
//! * **Experiment binaries** (`src/bin/table1.rs` … `src/bin/figure5.rs`,
//!   plus `all_experiments`): each regenerates one table or figure of the
//!   paper and writes both the rendered table and a CSV file under
//!   `target/experiments/`. Run them with
//!   `cargo run --release -p passflow-bench --bin table2 -- --scale default`.
//! * **Criterion benches** (`benches/`): micro- and macro-benchmarks of the
//!   flow's forward/inverse passes, the guessing loop and the ablation
//!   configurations, run with `cargo bench`.
//!
//! This library provides the small amount of shared plumbing: command-line
//! scale selection and result emission.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fs;
use std::path::PathBuf;

use passflow_eval::{EvalScale, Table, Workbench};

/// Where experiment outputs (rendered tables and CSV files) are written.
pub const OUTPUT_DIR: &str = "target/experiments";

/// The scale selected on an experiment binary's command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScaleChoice {
    /// `--scale smoke`: seconds-long sanity run.
    Smoke,
    /// `--scale default` (the default): CPU-scale run preserving the paper's
    /// relative comparisons.
    Default,
    /// `--scale paper`: the paper's original sizes; only for long offline
    /// runs.
    Paper,
}

impl ScaleChoice {
    /// Builds the corresponding [`EvalScale`].
    pub fn to_scale(&self) -> EvalScale {
        match self {
            ScaleChoice::Smoke => EvalScale::smoke(),
            ScaleChoice::Default => EvalScale::default_scale(),
            ScaleChoice::Paper => EvalScale::paper(),
        }
    }
}

/// Parses `--scale <smoke|default|paper>` from an argument list.
///
/// Unknown values fall back to the default scale with a warning on stderr,
/// so harness runs never die on a typo after minutes of training.
pub fn parse_scale_args<I: IntoIterator<Item = String>>(args: I) -> ScaleChoice {
    let args: Vec<String> = args.into_iter().collect();
    for window in args.windows(2) {
        if window[0] == "--scale" {
            return match window[1].as_str() {
                "smoke" => ScaleChoice::Smoke,
                "default" => ScaleChoice::Default,
                "paper" => ScaleChoice::Paper,
                other => {
                    eprintln!("unknown scale {other:?}, using default");
                    ScaleChoice::Default
                }
            };
        }
    }
    ScaleChoice::Default
}

/// Parses the scale from the process arguments.
pub fn scale_from_env() -> EvalScale {
    parse_scale_args(std::env::args().skip(1)).to_scale()
}

/// Prepares a workbench, printing progress to stderr.
///
/// # Errors
///
/// Propagates configuration/training errors from the core crate.
pub fn prepare(scale: EvalScale) -> passflow_core::Result<Workbench> {
    eprintln!(
        "preparing workbench: corpus={}, train subsample={}, budgets={:?}",
        scale.corpus_size, scale.train_subsample, scale.budgets
    );
    let workbench = Workbench::prepare(scale)?;
    eprintln!(
        "trained flow: {} parameters, best epoch {}, final NLL {:.3}",
        workbench.flow.num_parameters(),
        workbench.training.best_epoch,
        workbench.training.final_nll().unwrap_or(f32::NAN)
    );
    Ok(workbench)
}

/// Prints a result table and writes its CSV under [`OUTPUT_DIR`].
///
/// The CSV write is best-effort: failures (e.g. read-only checkouts) are
/// reported on stderr but do not abort the experiment.
pub fn emit(table: &Table, name: &str) {
    println!("{table}");
    let dir = PathBuf::from(OUTPUT_DIR);
    let path = dir.join(format!("{name}.csv"));
    let result = fs::create_dir_all(&dir).and_then(|()| fs::write(&path, table.to_csv()));
    match result {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn scale_parsing_recognizes_all_choices() {
        assert_eq!(
            parse_scale_args(args(&["--scale", "smoke"])),
            ScaleChoice::Smoke
        );
        assert_eq!(
            parse_scale_args(args(&["--scale", "default"])),
            ScaleChoice::Default
        );
        assert_eq!(
            parse_scale_args(args(&["--scale", "paper"])),
            ScaleChoice::Paper
        );
        assert_eq!(parse_scale_args(args(&[])), ScaleChoice::Default);
        assert_eq!(
            parse_scale_args(args(&["--scale", "bogus"])),
            ScaleChoice::Default
        );
    }

    #[test]
    fn scale_choice_maps_to_eval_scale() {
        assert_eq!(ScaleChoice::Smoke.to_scale(), EvalScale::smoke());
        assert_eq!(ScaleChoice::Default.to_scale(), EvalScale::default_scale());
        assert_eq!(ScaleChoice::Paper.to_scale(), EvalScale::paper());
    }

    #[test]
    fn emit_writes_csv() {
        let mut table = Table::new("t", vec!["a".to_string()]);
        table.push_row(vec!["1".to_string()]);
        emit(&table, "unit_test_emit");
        let path = PathBuf::from(OUTPUT_DIR).join("unit_test_emit.csv");
        if path.exists() {
            let contents = fs::read_to_string(&path).unwrap();
            assert!(contents.starts_with("a\n"));
            let _ = fs::remove_file(path);
        }
    }
}
