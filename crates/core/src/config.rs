//! Model and training configuration.
//!
//! [`FlowConfig::paper`] reproduces the architecture of Section IV-D
//! (18 coupling layers, residual `s`/`t` networks with 2 blocks of 256 hidden
//! units, char-run-1 masking, passwords of length ≤ 10). Smaller presets are
//! provided because the reproduction runs on CPU: the relative comparisons in
//! the paper's tables are preserved at reduced scale, and the paper-scale
//! configuration remains one call away.

use serde::{Deserialize, Serialize};

use crate::error::{FlowError, Result};
use crate::mask::MaskStrategy;
use crate::train::{EarlyStopConfig, Schedule};

/// Architecture of a [`PassFlow`](crate::PassFlow) model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Maximum password length; also the dimensionality of the data and
    /// latent spaces (flows cannot change dimensionality — Section V-A).
    pub max_len: usize,
    /// Number of affine coupling layers.
    pub coupling_layers: usize,
    /// Hidden width of the `s` and `t` residual networks.
    pub hidden_size: usize,
    /// Number of residual blocks in each `s`/`t` network.
    pub residual_blocks: usize,
    /// Masking strategy used to partition the input (Table VI ablation).
    pub masking: MaskStrategy,
}

impl FlowConfig {
    /// The paper's architecture: 18 coupling layers, 2 residual blocks of
    /// 256 hidden units, char-run-1 masking, max length 10.
    pub fn paper() -> Self {
        FlowConfig {
            max_len: 10,
            coupling_layers: 18,
            hidden_size: 256,
            residual_blocks: 2,
            masking: MaskStrategy::CharRun(1),
        }
    }

    /// A reduced architecture for CPU-scale evaluation runs: same structure,
    /// fewer/narrower layers. This is the default used by the experiment
    /// harness.
    pub fn evaluation() -> Self {
        FlowConfig {
            max_len: 10,
            coupling_layers: 8,
            hidden_size: 64,
            residual_blocks: 2,
            masking: MaskStrategy::CharRun(1),
        }
    }

    /// A tiny architecture for unit tests and doc examples.
    pub fn tiny() -> Self {
        FlowConfig {
            max_len: 10,
            coupling_layers: 4,
            hidden_size: 16,
            residual_blocks: 1,
            masking: MaskStrategy::CharRun(1),
        }
    }

    /// Sets the masking strategy (builder style).
    #[must_use]
    pub fn with_masking(mut self, masking: MaskStrategy) -> Self {
        self.masking = masking;
        self
    }

    /// Sets the number of coupling layers (builder style).
    #[must_use]
    pub fn with_coupling_layers(mut self, layers: usize) -> Self {
        self.coupling_layers = layers;
        self
    }

    /// Sets the hidden width (builder style).
    #[must_use]
    pub fn with_hidden_size(mut self, hidden: usize) -> Self {
        self.hidden_size = hidden;
        self
    }

    /// Sets the maximum password length (builder style).
    #[must_use]
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = max_len;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] if any field is zero or if a
    /// char-run mask length is not smaller than the password length.
    pub fn validate(&self) -> Result<()> {
        if self.max_len == 0 {
            return Err(FlowError::InvalidConfig("max_len must be positive".into()));
        }
        if self.coupling_layers == 0 {
            return Err(FlowError::InvalidConfig(
                "coupling_layers must be positive".into(),
            ));
        }
        if !self.coupling_layers.is_multiple_of(2) {
            return Err(FlowError::InvalidConfig(
                "coupling_layers must be even so alternating masks cover all positions".into(),
            ));
        }
        if self.hidden_size == 0 {
            return Err(FlowError::InvalidConfig(
                "hidden_size must be positive".into(),
            ));
        }
        if self.residual_blocks == 0 {
            return Err(FlowError::InvalidConfig(
                "residual_blocks must be positive".into(),
            ));
        }
        if let MaskStrategy::CharRun(m) = self.masking {
            if m == 0 || m >= self.max_len {
                return Err(FlowError::InvalidConfig(format!(
                    "char-run length {m} must be in [1, max_len)"
                )));
            }
        }
        Ok(())
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self::evaluation()
    }
}

/// Training hyper-parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set (400 in the paper).
    pub epochs: usize,
    /// Mini-batch size (512 in the paper).
    pub batch_size: usize,
    /// Rows per gradient-worker work unit. The micro-batch is the
    /// granularity of the deterministic gradient reduction: results depend
    /// on this value (like they do on `batch_size`) but **never** on
    /// [`grad_workers`](Self::grad_workers).
    pub micro_batch: usize,
    /// Number of gradient worker threads sharding each batch. A pure
    /// throughput knob: any worker count produces bit-identical results.
    pub grad_workers: usize,
    /// Number of consecutive batches folded into one optimizer step
    /// (gradient accumulation); the effective batch is
    /// `accum_steps × batch_size`.
    pub accum_steps: usize,
    /// Adam learning rate (0.001 in the paper).
    pub learning_rate: f32,
    /// Learning-rate schedule applied on top of
    /// [`learning_rate`](Self::learning_rate), evaluated per optimizer
    /// step.
    pub schedule: Schedule,
    /// Amplitude of the uniform dequantization noise, expressed as a
    /// fraction of the encoder's quantization step. Password encodings are
    /// discrete; adding sub-quantization noise makes the density estimation
    /// problem well-posed without changing which password a vector decodes
    /// to.
    pub dequantization: f32,
    /// Gradient-clipping threshold (L2, per parameter). `None` disables
    /// clipping.
    pub clip_norm: Option<f32>,
    /// Fraction of the encoded corpus held out as a validation split. When
    /// positive, best-epoch selection and early stopping monitor the
    /// validation NLL instead of the training NLL.
    pub validation_fraction: f32,
    /// Optional early-stopping rule on the monitored NLL.
    pub early_stop: Option<EarlyStopConfig>,
    /// Checkpoint cadence in epochs (used when the trainer has a
    /// checkpoint path configured).
    pub checkpoint_every: usize,
    /// RNG seed controlling the validation split, shuffling and
    /// dequantization noise (all drawn from derived streams keyed by
    /// `(seed, epoch, batch)`).
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's training setup (400 epochs, batch 512, lr 0.001,
    /// constant rate, no validation split).
    pub fn paper() -> Self {
        TrainConfig {
            epochs: 400,
            batch_size: 512,
            micro_batch: 128,
            grad_workers: 1,
            accum_steps: 1,
            learning_rate: 1e-3,
            schedule: Schedule::Constant,
            dequantization: 1.0,
            clip_norm: Some(5.0),
            validation_fraction: 0.0,
            early_stop: None,
            checkpoint_every: 1,
            seed: 0,
        }
    }

    /// A reduced setup for CPU-scale harness runs.
    pub fn evaluation() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 256,
            micro_batch: 64,
            grad_workers: 1,
            accum_steps: 1,
            learning_rate: 1e-3,
            schedule: Schedule::Constant,
            dequantization: 1.0,
            clip_norm: Some(5.0),
            validation_fraction: 0.0,
            early_stop: None,
            checkpoint_every: 1,
            seed: 0,
        }
    }

    /// A minimal setup for unit tests.
    pub fn tiny() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 128,
            micro_batch: 32,
            grad_workers: 1,
            accum_steps: 1,
            learning_rate: 2e-3,
            schedule: Schedule::Constant,
            dequantization: 1.0,
            clip_norm: Some(5.0),
            validation_fraction: 0.0,
            early_stop: None,
            checkpoint_every: 1,
            seed: 0,
        }
    }

    /// Sets the number of epochs (builder style).
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the batch size (builder style).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the learning rate (builder style).
    #[must_use]
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the micro-batch size (builder style).
    #[must_use]
    pub fn with_micro_batch(mut self, micro_batch: usize) -> Self {
        self.micro_batch = micro_batch;
        self
    }

    /// Sets the gradient worker count (builder style).
    #[must_use]
    pub fn with_grad_workers(mut self, grad_workers: usize) -> Self {
        self.grad_workers = grad_workers;
        self
    }

    /// Sets the gradient-accumulation factor (builder style).
    #[must_use]
    pub fn with_accum_steps(mut self, accum_steps: usize) -> Self {
        self.accum_steps = accum_steps;
        self
    }

    /// Sets the learning-rate schedule (builder style).
    #[must_use]
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the validation fraction (builder style).
    #[must_use]
    pub fn with_validation_fraction(mut self, fraction: f32) -> Self {
        self.validation_fraction = fraction;
        self
    }

    /// Sets the early-stopping rule (builder style).
    #[must_use]
    pub fn with_early_stop(mut self, rule: EarlyStopConfig) -> Self {
        self.early_stop = Some(rule);
        self
    }

    /// Sets the checkpoint cadence in epochs (builder style).
    #[must_use]
    pub fn with_checkpoint_every(mut self, epochs: usize) -> Self {
        self.checkpoint_every = epochs;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] on zero epochs/batch/micro
    /// sizes, zero workers or accumulation, a non-positive learning rate,
    /// an out-of-range noise amplitude or validation fraction, or an
    /// invalid schedule / early-stop rule.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(FlowError::InvalidConfig("epochs must be positive".into()));
        }
        if self.batch_size == 0 {
            return Err(FlowError::InvalidConfig(
                "batch_size must be positive".into(),
            ));
        }
        if self.micro_batch == 0 {
            return Err(FlowError::InvalidConfig(
                "micro_batch must be positive".into(),
            ));
        }
        if self.grad_workers == 0 {
            return Err(FlowError::InvalidConfig(
                "grad_workers must be positive".into(),
            ));
        }
        if self.accum_steps == 0 {
            return Err(FlowError::InvalidConfig(
                "accum_steps must be positive".into(),
            ));
        }
        if self.checkpoint_every == 0 {
            return Err(FlowError::InvalidConfig(
                "checkpoint_every must be positive".into(),
            ));
        }
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(FlowError::InvalidConfig(
                "learning_rate must be positive and finite".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.dequantization) {
            return Err(FlowError::InvalidConfig(
                "dequantization must be in [0, 1]".into(),
            ));
        }
        if !(0.0..=0.5).contains(&self.validation_fraction) {
            return Err(FlowError::InvalidConfig(
                "validation_fraction must be in [0, 0.5]".into(),
            ));
        }
        self.schedule.validate()?;
        if let Some(rule) = &self.early_stop {
            rule.validate()?;
        }
        Ok(())
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::evaluation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_iv_d() {
        let c = FlowConfig::paper();
        assert_eq!(c.max_len, 10);
        assert_eq!(c.coupling_layers, 18);
        assert_eq!(c.hidden_size, 256);
        assert_eq!(c.residual_blocks, 2);
        assert_eq!(c.masking, MaskStrategy::CharRun(1));
        assert!(c.validate().is_ok());

        let t = TrainConfig::paper();
        assert_eq!(t.epochs, 400);
        assert_eq!(t.batch_size, 512);
        assert!((t.learning_rate - 1e-3).abs() < 1e-9);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn presets_are_valid_and_ordered_by_size() {
        for c in [
            FlowConfig::tiny(),
            FlowConfig::evaluation(),
            FlowConfig::paper(),
        ] {
            assert!(c.validate().is_ok());
        }
        assert!(FlowConfig::tiny().hidden_size < FlowConfig::evaluation().hidden_size);
        assert!(FlowConfig::evaluation().hidden_size < FlowConfig::paper().hidden_size);
        for t in [
            TrainConfig::tiny(),
            TrainConfig::evaluation(),
            TrainConfig::paper(),
        ] {
            assert!(t.validate().is_ok());
        }
    }

    #[test]
    fn builders_modify_fields() {
        let c = FlowConfig::tiny()
            .with_masking(MaskStrategy::Horizontal)
            .with_coupling_layers(6)
            .with_hidden_size(24)
            .with_max_len(8);
        assert_eq!(c.masking, MaskStrategy::Horizontal);
        assert_eq!(c.coupling_layers, 6);
        assert_eq!(c.hidden_size, 24);
        assert_eq!(c.max_len, 8);

        let t = TrainConfig::tiny()
            .with_epochs(7)
            .with_batch_size(32)
            .with_seed(99)
            .with_learning_rate(0.01);
        assert_eq!(t.epochs, 7);
        assert_eq!(t.batch_size, 32);
        assert_eq!(t.seed, 99);
        assert!((t.learning_rate - 0.01).abs() < 1e-9);
    }

    #[test]
    fn invalid_flow_configs_are_rejected() {
        assert!(FlowConfig::tiny()
            .with_coupling_layers(0)
            .validate()
            .is_err());
        assert!(FlowConfig::tiny()
            .with_coupling_layers(3)
            .validate()
            .is_err());
        assert!(FlowConfig::tiny().with_hidden_size(0).validate().is_err());
        assert!(FlowConfig::tiny().with_max_len(0).validate().is_err());
        assert!(FlowConfig::tiny()
            .with_masking(MaskStrategy::CharRun(10))
            .validate()
            .is_err());
        let mut c = FlowConfig::tiny();
        c.residual_blocks = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_train_configs_are_rejected() {
        assert!(TrainConfig::tiny().with_epochs(0).validate().is_err());
        assert!(TrainConfig::tiny().with_batch_size(0).validate().is_err());
        assert!(TrainConfig::tiny()
            .with_learning_rate(-1.0)
            .validate()
            .is_err());
        let mut t = TrainConfig::tiny();
        t.dequantization = 2.0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn defaults_are_the_evaluation_presets() {
        assert_eq!(FlowConfig::default(), FlowConfig::evaluation());
        assert_eq!(TrainConfig::default(), TrainConfig::evaluation());
    }

    #[test]
    fn training_subsystem_builders_modify_fields() {
        let t = TrainConfig::tiny()
            .with_micro_batch(16)
            .with_grad_workers(4)
            .with_accum_steps(2)
            .with_validation_fraction(0.25)
            .with_early_stop(EarlyStopConfig::new(3))
            .with_checkpoint_every(5)
            .with_schedule(Schedule::WarmupCosine {
                warmup: 10,
                period: 100,
                min_factor: 0.1,
            });
        assert_eq!(t.micro_batch, 16);
        assert_eq!(t.grad_workers, 4);
        assert_eq!(t.accum_steps, 2);
        assert!((t.validation_fraction - 0.25).abs() < 1e-9);
        assert_eq!(t.early_stop, Some(EarlyStopConfig::new(3)));
        assert_eq!(t.checkpoint_every, 5);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn invalid_training_subsystem_knobs_are_rejected() {
        assert!(TrainConfig::tiny().with_micro_batch(0).validate().is_err());
        assert!(TrainConfig::tiny().with_grad_workers(0).validate().is_err());
        assert!(TrainConfig::tiny().with_accum_steps(0).validate().is_err());
        assert!(TrainConfig::tiny()
            .with_checkpoint_every(0)
            .validate()
            .is_err());
        assert!(TrainConfig::tiny()
            .with_validation_fraction(0.9)
            .validate()
            .is_err());
        assert!(TrainConfig::tiny()
            .with_early_stop(EarlyStopConfig::new(0))
            .validate()
            .is_err());
        assert!(TrainConfig::tiny()
            .with_schedule(Schedule::Step {
                every: 0,
                gamma: 0.5
            })
            .validate()
            .is_err());
    }
}
