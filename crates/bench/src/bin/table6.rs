//! Regenerates Table VI: the masking-strategy ablation.

use passflow_bench::{emit, prepare, scale_from_env};
use passflow_eval::tables;

fn main() -> passflow_core::Result<()> {
    let workbench = prepare(scale_from_env())?;
    let table = tables::table6(&workbench)?;
    emit(&table, "table6");
    Ok(())
}
