/root/repo/target/debug/deps/table6-7c701a2d50e3876c.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-7c701a2d50e3876c: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
