/root/repo/target/debug/deps/passflow_core-a155b01bdc017b77.d: crates/core/src/lib.rs crates/core/src/conditional.rs crates/core/src/config.rs crates/core/src/coupling.rs crates/core/src/engine/mod.rs crates/core/src/engine/attack.rs crates/core/src/engine/guesser.rs crates/core/src/engine/sharded.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/guess.rs crates/core/src/interpolate.rs crates/core/src/mask.rs crates/core/src/persist.rs crates/core/src/prior.rs crates/core/src/sample/mod.rs crates/core/src/sample/dynamic.rs crates/core/src/sample/smoothing.rs crates/core/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libpassflow_core-a155b01bdc017b77.rmeta: crates/core/src/lib.rs crates/core/src/conditional.rs crates/core/src/config.rs crates/core/src/coupling.rs crates/core/src/engine/mod.rs crates/core/src/engine/attack.rs crates/core/src/engine/guesser.rs crates/core/src/engine/sharded.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/guess.rs crates/core/src/interpolate.rs crates/core/src/mask.rs crates/core/src/persist.rs crates/core/src/prior.rs crates/core/src/sample/mod.rs crates/core/src/sample/dynamic.rs crates/core/src/sample/smoothing.rs crates/core/src/train.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/conditional.rs:
crates/core/src/config.rs:
crates/core/src/coupling.rs:
crates/core/src/engine/mod.rs:
crates/core/src/engine/attack.rs:
crates/core/src/engine/guesser.rs:
crates/core/src/engine/sharded.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/guess.rs:
crates/core/src/interpolate.rs:
crates/core/src/mask.rs:
crates/core/src/persist.rs:
crates/core/src/prior.rs:
crates/core/src/sample/mod.rs:
crates/core/src/sample/dynamic.rs:
crates/core/src/sample/smoothing.rs:
crates/core/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
