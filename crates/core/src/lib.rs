//! # passflow-core
//!
//! A Rust implementation of **PassFlow** (Pagnotta, Hitaj, De Gaspari,
//! Mancini — DSN 2022): password guessing with generative normalizing flows.
//!
//! The model is a RealNVP-style stack of affine [`coupling
//! layers`](CouplingLayer) mapping fixed-length password encodings to a
//! Gaussian latent space. Because the map is invertible with a tractable
//! Jacobian, the model offers exact log-likelihoods, exact latent inference,
//! and closed-form inversion for sampling — the properties the paper
//! leverages for its guessing strategies:
//!
//! * **static sampling** ([`PassFlow::sample_passwords`]),
//! * **Dynamic Sampling with penalization** ([`DynamicParams`],
//!   Algorithm 1),
//! * **data-space Gaussian smoothing** ([`GaussianSmoothing`],
//!   Section III-C),
//! * **latent-space operations**: neighbourhood sampling around a pivot
//!   ([`PassFlow::sample_near`], Table V) and interpolation
//!   ([`interpolate`], Algorithm 2 / Figure 3).
//!
//! All guessing experiments run through the unified [`engine`]: the
//! [`Guesser`] trait abstracts over guess generators (the flow and every
//! baseline), and the [`Attack`] builder executes the paper's evaluation
//! protocol — budgets, checkpoints, dedup, match counting — with parallel
//! sharded generation and streaming [`CheckpointReport`]s.
//!
//! The [`strength`] subsystem inverts the question: instead of enumerating
//! guesses to see when a password falls, it turns the models' exact
//! log-likelihoods ([`ProbabilityModel`]) into instant Monte-Carlo
//! guess-number estimates ([`SampleTable`]) — the strength-meter workload.
//!
//! ## Quickstart
//!
//! ```rust
//! use passflow_core::{Attack, FlowConfig, PassFlow, TrainConfig, train};
//! use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};
//! use rand::SeedableRng;
//!
//! // A tiny corpus and model so the example runs in a moment; see
//! // `FlowConfig::paper()` / `TrainConfig::paper()` for the paper's setup.
//! let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(3_000)).generate(1);
//! let split = corpus.paper_split(0.8, 1_000, 1);
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let flow = PassFlow::new(FlowConfig::tiny(), &mut rng)?;
//! train(&flow, &split.train, &TrainConfig::tiny())?;
//!
//! let outcome = Attack::new(&split.test_set()).budget(2_000).shards(4).run(&flow)?;
//! println!("matched {}% of the test set", outcome.final_report().matched_percent);
//! # Ok::<(), passflow_core::FlowError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod conditional;
mod config;
mod coupling;
pub mod engine;
mod error;
mod fastpath;
mod flow;
mod guess;
mod interpolate;
mod mask;
mod persist;
mod prior;
mod sample;
pub mod strength;
pub mod train;

pub use conditional::{conditional_guess, ConditionalConfig, ConditionalGuess, PasswordTemplate};
pub use config::{FlowConfig, TrainConfig};
pub use coupling::CouplingLayer;
pub use engine::{
    Attack, AttackEngine, AttackOutcome, CheckpointReport, FlowSession, GuessSession, Guesser,
    LatentGuesser, LatentSession, ShardedSet,
};
pub use error::{FlowError, Result};
pub use fastpath::{
    CouplingSnapshot, FlowSnapshot, FlowWorkspace, QuantizedCouplingSnapshot, QuantizedFlowSnapshot,
};
pub use flow::PassFlow;
#[allow(deprecated)]
pub use guess::run_attack;
pub use guess::AttackConfig;
pub use interpolate::{interpolate, interpolate_passwords, InterpolationPoint};
pub use mask::MaskStrategy;
pub use persist::{
    load_checkpoint, load_checkpoint_from_reader, load_flow, load_flow_from_reader,
    save_checkpoint, save_checkpoint_to_writer, save_flow, save_flow_to_writer,
};
pub use prior::{GaussianMixturePrior, Prior, StandardGaussianPrior};
pub use sample::{
    DynamicParams, GaussianSmoothing, GuessingStrategy, MatchedLatents, Penalization,
};
pub use strength::{
    attack_unique_rank, probe_quantization, score_wordlist, FlowScorer, PasswordStrength,
    ProbabilityModel, QuantizationReport, QuantizedScorer, SampleTable, SamplingRankEstimate,
    StrengthEstimate,
};
pub use train::{
    train, EarlyStop, EarlyStopConfig, EpochDriver, EpochStats, EpochVerdict, LoopControl,
    Schedule, StepCtx, TrainLoop, TrainState, Trainer, TrainingReport,
};
