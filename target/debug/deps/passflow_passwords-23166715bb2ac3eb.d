/root/repo/target/debug/deps/passflow_passwords-23166715bb2ac3eb.d: crates/passwords/src/lib.rs crates/passwords/src/alphabet.rs crates/passwords/src/dataset.rs crates/passwords/src/encoding.rs crates/passwords/src/generator.rs crates/passwords/src/stats.rs crates/passwords/src/wordlists.rs

/root/repo/target/debug/deps/libpassflow_passwords-23166715bb2ac3eb.rlib: crates/passwords/src/lib.rs crates/passwords/src/alphabet.rs crates/passwords/src/dataset.rs crates/passwords/src/encoding.rs crates/passwords/src/generator.rs crates/passwords/src/stats.rs crates/passwords/src/wordlists.rs

/root/repo/target/debug/deps/libpassflow_passwords-23166715bb2ac3eb.rmeta: crates/passwords/src/lib.rs crates/passwords/src/alphabet.rs crates/passwords/src/dataset.rs crates/passwords/src/encoding.rs crates/passwords/src/generator.rs crates/passwords/src/stats.rs crates/passwords/src/wordlists.rs

crates/passwords/src/lib.rs:
crates/passwords/src/alphabet.rs:
crates/passwords/src/dataset.rs:
crates/passwords/src/encoding.rs:
crates/passwords/src/generator.rs:
crates/passwords/src/stats.rs:
crates/passwords/src/wordlists.rs:
