/root/repo/target/debug/deps/passflow_bench-19d3812c2654b9be.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpassflow_bench-19d3812c2654b9be.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
