//! Model persistence: saving and loading trained flows.
//!
//! The format is a small, self-describing text format (`PASSFLOW v1`) so
//! checkpoints remain inspectable and diff-able, and no extra serialization
//! dependency is needed. Weights are stored as hexadecimal IEEE-754 bit
//! patterns, so a save/load round trip is bit-exact.
//!
//! ```text
//! PASSFLOW v1
//! max_len 10
//! coupling_layers 18
//! hidden_size 256
//! residual_blocks 2
//! masking char-run 1
//! tensors 216
//! tensor 10 256
//! 3f80000 bf000000 …
//! …
//! ```

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use rand::SeedableRng;

use crate::config::FlowConfig;
use crate::error::{FlowError, Result};
use crate::flow::PassFlow;
use crate::mask::MaskStrategy;
use passflow_nn::Tensor;

const MAGIC: &str = "PASSFLOW v1";

fn masking_to_string(masking: MaskStrategy) -> String {
    match masking {
        MaskStrategy::CharRun(m) => format!("char-run {m}"),
        MaskStrategy::Horizontal => "horizontal".to_string(),
    }
}

fn masking_from_string(text: &str) -> Result<MaskStrategy> {
    let text = text.trim();
    if text == "horizontal" {
        return Ok(MaskStrategy::Horizontal);
    }
    if let Some(rest) = text.strip_prefix("char-run ") {
        let m: usize = rest
            .trim()
            .parse()
            .map_err(|_| FlowError::IncompatibleWeights(format!("bad masking {text:?}")))?;
        return Ok(MaskStrategy::CharRun(m));
    }
    Err(FlowError::IncompatibleWeights(format!(
        "unknown masking strategy {text:?}"
    )))
}

/// Serializes a flow's architecture and weights to a writer.
///
/// # Errors
///
/// Returns [`FlowError::IncompatibleWeights`] wrapping any I/O failure.
pub fn save_flow_to_writer<W: Write>(flow: &PassFlow, writer: &mut W) -> Result<()> {
    let io_err = |e: std::io::Error| FlowError::IncompatibleWeights(format!("write failed: {e}"));
    let config = flow.config();
    writeln!(writer, "{MAGIC}").map_err(io_err)?;
    writeln!(writer, "max_len {}", config.max_len).map_err(io_err)?;
    writeln!(writer, "coupling_layers {}", config.coupling_layers).map_err(io_err)?;
    writeln!(writer, "hidden_size {}", config.hidden_size).map_err(io_err)?;
    writeln!(writer, "residual_blocks {}", config.residual_blocks).map_err(io_err)?;
    writeln!(writer, "masking {}", masking_to_string(config.masking)).map_err(io_err)?;
    let snapshot = flow.weight_snapshot();
    writeln!(writer, "tensors {}", snapshot.len()).map_err(io_err)?;
    for tensor in &snapshot {
        writeln!(writer, "tensor {} {}", tensor.rows(), tensor.cols()).map_err(io_err)?;
        let words: Vec<String> = tensor
            .as_slice()
            .iter()
            .map(|v| format!("{:08x}", v.to_bits()))
            .collect();
        writeln!(writer, "{}", words.join(" ")).map_err(io_err)?;
    }
    Ok(())
}

/// Saves a flow to a file. See [`save_flow_to_writer`] for the format.
///
/// # Errors
///
/// Returns [`FlowError::IncompatibleWeights`] wrapping any I/O failure.
pub fn save_flow(flow: &PassFlow, path: impl AsRef<Path>) -> Result<()> {
    let mut file = fs::File::create(path.as_ref())
        .map_err(|e| FlowError::IncompatibleWeights(format!("cannot create file: {e}")))?;
    save_flow_to_writer(flow, &mut file)
}

fn parse_header_line(line: Option<std::io::Result<String>>, key: &str) -> Result<String> {
    let line = line
        .ok_or_else(|| FlowError::IncompatibleWeights(format!("missing {key} line")))?
        .map_err(|e| FlowError::IncompatibleWeights(format!("read failed: {e}")))?;
    line.strip_prefix(key)
        .map(|rest| rest.trim().to_string())
        .ok_or_else(|| FlowError::IncompatibleWeights(format!("expected {key:?}, got {line:?}")))
}

fn parse_usize(text: &str, key: &str) -> Result<usize> {
    text.parse()
        .map_err(|_| FlowError::IncompatibleWeights(format!("bad {key} value {text:?}")))
}

/// Loads a flow from a reader in the format produced by
/// [`save_flow_to_writer`].
///
/// # Errors
///
/// Returns [`FlowError::IncompatibleWeights`] if the stream is not a valid
/// checkpoint, or any construction error from [`PassFlow::new`].
pub fn load_flow_from_reader<R: Read>(reader: R) -> Result<PassFlow> {
    let mut lines = BufReader::new(reader).lines();
    let magic = lines
        .next()
        .ok_or_else(|| FlowError::IncompatibleWeights("empty checkpoint".into()))?
        .map_err(|e| FlowError::IncompatibleWeights(format!("read failed: {e}")))?;
    if magic.trim() != MAGIC {
        return Err(FlowError::IncompatibleWeights(format!(
            "bad magic line {magic:?}"
        )));
    }
    let max_len = parse_usize(&parse_header_line(lines.next(), "max_len")?, "max_len")?;
    let coupling_layers = parse_usize(
        &parse_header_line(lines.next(), "coupling_layers")?,
        "coupling_layers",
    )?;
    let hidden_size = parse_usize(
        &parse_header_line(lines.next(), "hidden_size")?,
        "hidden_size",
    )?;
    let residual_blocks = parse_usize(
        &parse_header_line(lines.next(), "residual_blocks")?,
        "residual_blocks",
    )?;
    let masking = masking_from_string(&parse_header_line(lines.next(), "masking")?)?;
    let num_tensors = parse_usize(&parse_header_line(lines.next(), "tensors")?, "tensors")?;

    let config = FlowConfig {
        max_len,
        coupling_layers,
        hidden_size,
        residual_blocks,
        masking,
    };
    // The RNG only provides the initial weights, which are immediately
    // overwritten by the checkpoint, so any seed works.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let flow = PassFlow::new(config, &mut rng)?;

    let mut tensors = Vec::with_capacity(num_tensors);
    for index in 0..num_tensors {
        let shape_line = parse_header_line(lines.next(), "tensor")?;
        let mut parts = shape_line.split_whitespace();
        let rows = parse_usize(parts.next().unwrap_or(""), "tensor rows")?;
        let cols = parse_usize(parts.next().unwrap_or(""), "tensor cols")?;
        let data_line = lines
            .next()
            .ok_or_else(|| {
                FlowError::IncompatibleWeights(format!("missing data for tensor {index}"))
            })?
            .map_err(|e| FlowError::IncompatibleWeights(format!("read failed: {e}")))?;
        let values: Vec<f32> = data_line
            .split_whitespace()
            .map(|word| {
                u32::from_str_radix(word, 16)
                    .map(f32::from_bits)
                    .map_err(|_| {
                        FlowError::IncompatibleWeights(format!("bad weight word {word:?}"))
                    })
            })
            .collect::<Result<Vec<f32>>>()?;
        let tensor = Tensor::from_vec(rows, cols, values).map_err(|e| {
            FlowError::IncompatibleWeights(format!("tensor {index} has wrong size: {e}"))
        })?;
        tensors.push(tensor);
    }
    flow.load_weights(&tensors)?;
    Ok(flow)
}

/// Loads a flow from a checkpoint file written by [`save_flow`].
///
/// # Errors
///
/// See [`load_flow_from_reader`].
pub fn load_flow(path: impl AsRef<Path>) -> Result<PassFlow> {
    let file = fs::File::open(path.as_ref())
        .map_err(|e| FlowError::IncompatibleWeights(format!("cannot open file: {e}")))?;
    load_flow_from_reader(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use passflow_nn::rng as nnrng;

    fn tiny_flow(seed: u64) -> PassFlow {
        let mut rng = nnrng::seeded(seed);
        PassFlow::new(
            FlowConfig::tiny().with_masking(MaskStrategy::CharRun(2)),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let flow = tiny_flow(1);
        let mut buffer = Vec::new();
        save_flow_to_writer(&flow, &mut buffer).unwrap();
        let restored = load_flow_from_reader(buffer.as_slice()).unwrap();

        assert_eq!(restored.config(), flow.config());
        // Same exact densities for a handful of passwords.
        for pw in ["jimmy91", "123456", "qwerty"] {
            assert_eq!(
                flow.log_prob_password(pw).unwrap().to_bits(),
                restored.log_prob_password(pw).unwrap().to_bits(),
                "density mismatch for {pw}"
            );
        }
        // And bit-exact weights.
        for (a, b) in flow
            .weight_snapshot()
            .iter()
            .zip(restored.weight_snapshot().iter())
        {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn file_round_trip_works() {
        let flow = tiny_flow(2);
        let path = std::env::temp_dir().join("passflow_persist_test.pfw");
        save_flow(&flow, &path).unwrap();
        let restored = load_flow(&path).unwrap();
        assert_eq!(restored.config(), flow.config());
        let _ = fs::remove_file(path);
    }

    #[test]
    fn corrupted_checkpoints_are_rejected() {
        // Wrong magic.
        assert!(matches!(
            load_flow_from_reader("NOT A CHECKPOINT".as_bytes()),
            Err(FlowError::IncompatibleWeights(_))
        ));
        // Truncated file: header only.
        let flow = tiny_flow(3);
        let mut buffer = Vec::new();
        save_flow_to_writer(&flow, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let truncated: String = text.lines().take(7).collect::<Vec<_>>().join("\n");
        assert!(load_flow_from_reader(truncated.as_bytes()).is_err());
        // Corrupted weight word.
        let corrupted = text.replacen("tensor", "tensor_bad", 1);
        assert!(load_flow_from_reader(corrupted.as_bytes()).is_err());
    }

    #[test]
    fn masking_strings_round_trip() {
        for masking in [
            MaskStrategy::CharRun(1),
            MaskStrategy::CharRun(3),
            MaskStrategy::Horizontal,
        ] {
            assert_eq!(
                masking_from_string(&masking_to_string(masking)).unwrap(),
                masking
            );
        }
        assert!(masking_from_string("diagonal").is_err());
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        assert!(matches!(
            load_flow("/definitely/not/a/real/path.pfw"),
            Err(FlowError::IncompatibleWeights(_))
        ));
    }
}
