//! End-to-end breach screening: train a flow, attack a test set, archive
//! the cracked passwords into a `PFDIGEST v1` digest store, then screen a
//! wordlist against the archive — the full defender pipeline behind
//! `passflow-serve --digest`.
//!
//! Self-checking: every assertion is a hard invariant (membership agrees
//! with the archive's input, counts sum across shards, the one-pass and
//! merged builds are byte-identical), and the process exits non-zero if
//! any fails.
//!
//! ```text
//! cargo run --release --example screening
//! ```

use std::collections::BTreeMap;

use passflow::store::sha1;
use passflow::{
    merge_artifacts, train, Attack, CorpusConfig, DigestConfig, DigestStore, DigestStoreBuilder,
    FlowConfig, PassFlow, SyntheticCorpusGenerator, TrainConfig,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scratch = std::env::temp_dir().join(format!("passflow-screening-{}", std::process::id()));
    std::fs::create_dir_all(&scratch)?;

    // 1. Train a small flow and run a guessing attack.
    let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(12_000)).generate(9);
    let split = corpus.paper_split(0.8, 3_000, 9);
    let targets = split.test_set();
    println!(
        "training on {} passwords, attacking {} targets",
        split.train.len(),
        targets.len()
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let flow = PassFlow::new(FlowConfig::tiny(), &mut rng)?;
    train(&flow, &split.train, &TrainConfig::tiny().with_epochs(2))?;
    let outcome = Attack::new(&targets).budget(20_000).run(&flow)?;
    println!(
        "attack cracked {} / {} targets",
        outcome.matched_passwords.len(),
        targets.len()
    );

    // 2. Archive the breach corpus — the training set (a defender's known
    //    breach dump) plus whatever the attack cracked — as a digest
    //    store; and again as four shards merged, which must produce the
    //    identical artifact.
    let archive: Vec<&str> = split
        .train
        .iter()
        .chain(outcome.matched_passwords.iter())
        .map(String::as_str)
        .collect();
    let one_pass = scratch.join("breached.pfd");
    let mut builder = DigestStoreBuilder::new(DigestConfig::default());
    for pw in &archive {
        builder.add_password(pw)?;
    }
    let stats = builder.finish(&one_pass)?;
    println!(
        "archived {} unique digests from {} passwords ({} bytes)",
        stats.record_count,
        archive.len(),
        stats.bytes
    );
    assert!(stats.record_count > 0, "the archive must not be empty");

    let shard_paths: Vec<_> = (0..4).map(|s| scratch.join(format!("s{s}.pfd"))).collect();
    for (s, path) in shard_paths.iter().enumerate() {
        let mut builder = DigestStoreBuilder::new(DigestConfig::default());
        for pw in archive.iter().skip(s).step_by(4) {
            builder.add_password(pw)?;
        }
        builder.finish(path)?;
    }
    let merged = scratch.join("merged.pfd");
    merge_artifacts(&shard_paths, &merged)?;
    assert_eq!(
        std::fs::read(&one_pass)?,
        std::fs::read(&merged)?,
        "one-pass and 4-shard-merged archives must be byte-identical"
    );
    println!("4-shard merge is byte-identical to the one-pass build");

    // 3. Screen a wordlist — the test set plus fresh passwords — and check
    //    every verdict (membership *and* count) against the archive input.
    let store = DigestStore::open(&one_pass)?;
    let mut expected: BTreeMap<&str, u64> = BTreeMap::new();
    for pw in &archive {
        *expected.entry(pw).or_insert(0) += 1;
    }
    let fresh = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(500))
        .generate(77)
        .into_passwords();

    let mut screened = 0u64;
    let mut breached = 0u64;
    for pw in split
        .test_unique
        .iter()
        .chain(fresh.iter())
        .map(String::as_str)
    {
        let verdict = store.contains_password(pw)?;
        let want = expected.get(pw).copied();
        assert_eq!(
            verdict, want,
            "screening {pw:?}: store says {verdict:?}, archive input says {want:?}"
        );
        screened += 1;
        if verdict.is_some() {
            breached += 1;
        }
    }
    assert!(breached > 0, "some test passwords reuse breached ones");
    assert!(breached < screened, "some screened passwords must be clean");
    println!("screened {screened} passwords, {breached} breached — all verdicts exact");

    // 4. The k-anonymity range view agrees with direct membership: each
    //    archived password's suffix is present under its 5-hex-char prefix
    //    with the right count.
    for pw in archive.iter().take(50) {
        let hex = sha1::to_hex(&sha1::password_digest(pw));
        let (prefix, _) = hex.split_at(5);
        let entries = store.range(prefix)?;
        let count = expected[pw];
        assert!(
            entries
                .iter()
                .any(|e| hex[5..].starts_with(&e.suffix) && e.count == count),
            "{pw:?}: prefix {prefix} range lacks its suffix (entries: {entries:?})"
        );
    }
    println!("k-anonymity range queries agree with direct membership");

    std::fs::remove_dir_all(&scratch)?;
    println!("ok");
    Ok(())
}
