/root/repo/target/debug/deps/table5-64065faf15bfcd37.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-64065faf15bfcd37.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
