/root/repo/target/debug/deps/figure2-113777f0c7fb5e0f.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-113777f0c7fb5e0f: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
