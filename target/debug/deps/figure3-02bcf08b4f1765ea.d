/root/repo/target/debug/deps/figure3-02bcf08b4f1765ea.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-02bcf08b4f1765ea: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
