//! Data-space Gaussian smoothing (Section III-C).
//!
//! A flow maps the continuous latent space onto the discrete password space,
//! so distinct latent samples frequently decode to the same password
//! (collisions) — especially under dynamic sampling with small σ, where the
//! search concentrates in tiny latent neighbourhoods. Gaussian smoothing
//! perturbs the *decoded data-space point* with small Gaussian noise,
//! nudging collided samples onto neighbouring passwords while staying in the
//! same region of the data space.

use rand::Rng;
use serde::{Deserialize, Serialize};

use passflow_nn::rng as nnrng;

/// Configuration of the data-space Gaussian smoothing pass.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaussianSmoothing {
    /// Standard deviation of the data-space perturbation. The default is a
    /// little above one encoder quantization step for the default alphabet,
    /// so a perturbation can move a character to an adjacent symbol but
    /// rarely further.
    pub sigma: f32,
    /// Maximum number of incremental perturbation attempts applied to a
    /// colliding sample before giving up and keeping the duplicate.
    pub max_attempts: usize,
}

impl Default for GaussianSmoothing {
    fn default() -> Self {
        GaussianSmoothing {
            sigma: 0.01,
            max_attempts: 4,
        }
    }
}

impl GaussianSmoothing {
    /// Creates a smoothing configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive or `max_attempts` is zero.
    pub fn new(sigma: f32, max_attempts: usize) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        assert!(max_attempts > 0, "max_attempts must be positive");
        GaussianSmoothing {
            sigma,
            max_attempts,
        }
    }

    /// Returns a perturbed copy of a data-space feature vector:
    /// `x + ε, ε ~ N(0, σ² I)`.
    pub fn perturb<R: Rng + ?Sized>(&self, features: &[f32], rng: &mut R) -> Vec<f32> {
        let mut out = features.to_vec();
        self.perturb_in_place(&mut out, rng);
        out
    }

    /// Adds `ε ~ N(0, σ² I)` to `features` in place (the allocation-free
    /// form the attack engine's smoothing loop uses; RNG consumption is
    /// identical to [`perturb`](Self::perturb)).
    pub fn perturb_in_place<R: Rng + ?Sized>(&self, features: &mut [f32], rng: &mut R) {
        for v in features {
            *v += self.sigma * nnrng::standard_normal(rng);
        }
    }

    /// Incrementally perturbs `features` until `accept` returns true or
    /// `max_attempts` is exhausted; returns the accepted vector, or `None`
    /// if every attempt was rejected.
    ///
    /// "Incrementally" follows the paper: each attempt adds noise to the
    /// *previous* attempt, drifting further from the original point the
    /// longer the collision persists. One scratch vector is reused across
    /// attempts.
    pub fn perturb_until<R: Rng + ?Sized>(
        &self,
        features: &[f32],
        rng: &mut R,
        mut accept: impl FnMut(&[f32]) -> bool,
    ) -> Option<Vec<f32>> {
        let mut current = features.to_vec();
        for _ in 0..self.max_attempts {
            self.perturb_in_place(&mut current, rng);
            if accept(&current) {
                return Some(current);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use passflow_passwords::PasswordEncoder;

    #[test]
    fn perturbation_has_the_requested_scale() {
        let smoothing = GaussianSmoothing::new(0.05, 3);
        let mut rng = nnrng::seeded(1);
        let original = vec![0.5f32; 1000];
        let perturbed = smoothing.perturb(&original, &mut rng);
        let mean_abs_delta: f32 = original
            .iter()
            .zip(perturbed.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / original.len() as f32;
        // E|N(0, σ)| = σ·sqrt(2/π) ≈ 0.8·σ.
        assert!(
            (mean_abs_delta - 0.04).abs() < 0.01,
            "delta {mean_abs_delta}"
        );
    }

    #[test]
    fn default_sigma_can_flip_characters_but_keeps_structure() {
        let smoothing = GaussianSmoothing::default();
        let encoder = PasswordEncoder::default();
        let mut rng = nnrng::seeded(2);
        let features = encoder.encode("jimmy91").unwrap();
        let mut changed = 0;
        let trials = 200;
        for _ in 0..trials {
            let perturbed = smoothing.perturb(&features, &mut rng);
            let decoded = encoder.decode(&perturbed);
            if decoded != "jimmy91" {
                changed += 1;
            }
            // Perturbed passwords never change length by more than a char or
            // two and never become empty.
            assert!(!decoded.is_empty());
            assert!(decoded.chars().count() <= 10);
        }
        // The default sigma should produce variation.
        assert!(changed > 0, "no perturbation ever changed the password");

        // A sigma well below one quantization step should frequently leave
        // the password untouched (the smoothing strength is what controls
        // how aggressively collisions are broken).
        let gentle = GaussianSmoothing::new(0.001, 4);
        let unchanged_gentle = (0..trials)
            .filter(|_| encoder.decode(&gentle.perturb(&features, &mut rng)) == "jimmy91")
            .count();
        assert!(
            unchanged_gentle > 0,
            "even a tiny perturbation always changed the password"
        );
    }

    #[test]
    fn perturb_until_respects_the_acceptance_predicate() {
        let smoothing = GaussianSmoothing::new(0.05, 10);
        let mut rng = nnrng::seeded(3);
        let features = vec![0.3f32; 4];
        // Accept anything: first attempt succeeds.
        let accepted = smoothing.perturb_until(&features, &mut rng, |_| true);
        assert!(accepted.is_some());
        // Accept nothing: exhausts attempts and returns None.
        let rejected = smoothing.perturb_until(&features, &mut rng, |_| false);
        assert!(rejected.is_none());
    }

    #[test]
    fn perturb_until_drifts_incrementally() {
        let smoothing = GaussianSmoothing::new(0.05, 50);
        let mut rng = nnrng::seeded(4);
        let features = vec![0.0f32; 8];
        let mut attempts = 0;
        let result = smoothing.perturb_until(&features, &mut rng, |candidate| {
            attempts += 1;
            // Only accept once the point has drifted measurably, which
            // requires accumulating several increments.
            candidate.iter().map(|v| v.abs()).sum::<f32>() > 0.5
        });
        assert!(result.is_some());
        assert!(attempts > 1, "acceptance happened suspiciously early");
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn invalid_sigma_rejected() {
        let _ = GaussianSmoothing::new(0.0, 1);
    }

    #[test]
    #[should_panic(expected = "max_attempts must be positive")]
    fn zero_attempts_rejected() {
        let _ = GaussianSmoothing::new(0.1, 0);
    }
}
