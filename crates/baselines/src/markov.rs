//! Order-n character-level Markov model.
//!
//! This is the classic statistical password guesser (John the Ripper's
//! Markov mode, reference [2] of the paper). It serves two purposes in the
//! reproduction: a non-neural comparison point for the tables, and a sanity
//! anchor for the synthetic corpus (a Markov model trained on a RockYou-like
//! corpus should comfortably beat uniform random guessing).

use std::collections::HashMap;

use rand::{Rng, RngCore};

use passflow_core::{Guesser, ProbabilityModel};
use passflow_nn::rng as nnrng;

/// Special token marking the start/end of a password in the n-gram tables.
const BOUNDARY: char = '\u{0}';

/// An order-`n` character Markov model with add-k smoothing.
#[derive(Clone, Debug)]
pub struct MarkovModel {
    order: usize,
    max_len: usize,
    smoothing: f64,
    /// Transition counts: context (last `order` chars) → next char → count.
    transitions: HashMap<String, HashMap<char, u32>>,
    /// All characters observed during training (the sampling support).
    vocabulary: Vec<char>,
}

impl MarkovModel {
    /// Trains an order-`order` model on a password corpus.
    ///
    /// # Panics
    ///
    /// Panics if `order` is zero or the corpus is empty.
    pub fn train(passwords: &[String], order: usize, max_len: usize) -> Self {
        assert!(order > 0, "order must be positive");
        assert!(!passwords.is_empty(), "training corpus must not be empty");
        let mut transitions: HashMap<String, HashMap<char, u32>> = HashMap::new();
        let mut vocabulary: Vec<char> = Vec::new();

        for password in passwords {
            let chars: Vec<char> = std::iter::repeat_n(BOUNDARY, order)
                .chain(password.chars())
                .chain(std::iter::once(BOUNDARY))
                .collect();
            for window in chars.windows(order + 1) {
                let context: String = window[..order].iter().collect();
                let next = window[order];
                *transitions
                    .entry(context)
                    .or_default()
                    .entry(next)
                    .or_insert(0) += 1;
                if next != BOUNDARY && !vocabulary.contains(&next) {
                    vocabulary.push(next);
                }
            }
        }
        vocabulary.sort_unstable();

        MarkovModel {
            order,
            max_len,
            smoothing: 0.01,
            transitions,
            vocabulary,
        }
    }

    /// Model order (context length in characters).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of distinct contexts observed during training.
    pub fn num_contexts(&self) -> usize {
        self.transitions.len()
    }

    /// Characters the model can emit.
    pub fn vocabulary(&self) -> &[char] {
        &self.vocabulary
    }

    fn next_char<R: Rng + ?Sized>(&self, context: &str, rng: &mut R) -> char {
        let options = self.transitions.get(context);
        // Candidate set: observed vocabulary plus the end-of-password token.
        let mut weights: Vec<f32> = Vec::with_capacity(self.vocabulary.len() + 1);
        let mut symbols: Vec<char> = Vec::with_capacity(self.vocabulary.len() + 1);
        for &c in self.vocabulary.iter().chain(std::iter::once(&BOUNDARY)) {
            let count = options.and_then(|m| m.get(&c)).copied().unwrap_or(0) as f64;
            symbols.push(c);
            weights.push((count + self.smoothing) as f32);
        }
        symbols[nnrng::sample_discrete(&weights, rng)]
    }

    /// Samples a single password from the model.
    pub fn sample_password<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let mut context: Vec<char> = vec![BOUNDARY; self.order];
        let mut out = String::new();
        while out.chars().count() < self.max_len {
            let ctx: String = context.iter().collect();
            let next = self.next_char(&ctx, rng);
            if next == BOUNDARY {
                if out.is_empty() {
                    // Zero-length passwords are useless guesses; resample.
                    continue;
                }
                break;
            }
            out.push(next);
            context.rotate_left(1);
            let last = context.len() - 1;
            context[last] = next;
        }
        out
    }

    /// Log-probability of a password under the model (with smoothing),
    /// including the end-of-password transition.
    pub fn log_prob(&self, password: &str) -> f64 {
        let chars: Vec<char> = std::iter::repeat_n(BOUNDARY, self.order)
            .chain(password.chars())
            .chain(std::iter::once(BOUNDARY))
            .collect();
        let vocab_size = (self.vocabulary.len() + 1) as f64;
        let mut total = 0.0;
        for window in chars.windows(self.order + 1) {
            let context: String = window[..self.order].iter().collect();
            let next = window[self.order];
            let options = self.transitions.get(&context);
            let count = options.and_then(|m| m.get(&next)).copied().unwrap_or(0) as f64;
            let context_total: f64 = options
                .map(|m| m.values().map(|&v| v as f64).sum())
                .unwrap_or(0.0);
            let p = (count + self.smoothing) / (context_total + self.smoothing * vocab_size);
            total += p.ln();
        }
        total
    }
}

impl Guesser for MarkovModel {
    fn name(&self) -> &str {
        "Markov"
    }

    fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
        (0..n).map(|_| self.sample_password(rng)).collect()
    }
}

impl ProbabilityModel for MarkovModel {
    /// The chain's exact log-probability ([`MarkovModel::log_prob`]).
    ///
    /// `None` for passwords [`sample_password`](MarkovModel::sample_password)
    /// can never emit (empty, or longer than `max_len`); within the emitted
    /// support, scoring matches sampling up to the boundary treatment of
    /// maximum-length strings, so `exp(log_prob)` sums to ≈ 1 over an
    /// exhaustive small-alphabet enumeration (`tests/strength.rs`).
    fn password_log_prob(&self, password: &str) -> Option<f64> {
        // `sample_password` only emits non-empty strings of at most
        // `max_len` characters drawn from the training vocabulary; anything
        // else has sampling probability zero (the smoothed chain would
        // still assign out-of-vocabulary characters leftover mass, which
        // lies outside the per-context normalization).
        if password.is_empty()
            || password.chars().count() > self.max_len
            || !password.chars().all(|c| self.vocabulary.contains(&c))
        {
            return None;
        }
        Some(self.log_prob(password))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};

    fn corpus(n: usize) -> Vec<String> {
        SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(n))
            .generate(41)
            .into_passwords()
    }

    #[test]
    fn training_builds_contexts_and_vocabulary() {
        let model = MarkovModel::train(&corpus(2_000), 2, 10);
        assert_eq!(model.order(), 2);
        assert!(model.num_contexts() > 100);
        assert!(model.vocabulary().len() > 20);
        assert!(!model.vocabulary().contains(&BOUNDARY));
    }

    #[test]
    fn samples_are_bounded_and_nonempty() {
        let model = MarkovModel::train(&corpus(2_000), 2, 10);
        let mut rng = nnrng::seeded(1);
        for _ in 0..200 {
            let p = model.sample_password(&mut rng);
            assert!(!p.is_empty());
            assert!(p.chars().count() <= 10);
        }
    }

    #[test]
    fn trained_model_prefers_real_passwords_over_noise() {
        let model = MarkovModel::train(&corpus(5_000), 2, 10);
        let real = model.log_prob("jessica1");
        let noise = model.log_prob("xq9!zv#p");
        assert!(
            real > noise,
            "expected human-like password to score higher: {real} vs {noise}"
        );
    }

    #[test]
    fn higher_order_fits_training_data_more_sharply() {
        let data = corpus(3_000);
        let o1 = MarkovModel::train(&data, 1, 10);
        let o3 = MarkovModel::train(&data, 3, 10);
        // A higher-order model assigns higher likelihood to a frequent
        // training-set password.
        assert!(o3.log_prob("123456") >= o1.log_prob("123456") - 1.0);
        assert!(o3.num_contexts() > o1.num_contexts());
    }

    #[test]
    fn generate_implements_guesser_trait() {
        let model = MarkovModel::train(&corpus(1_000), 2, 10);
        let mut rng = nnrng::seeded(2);
        let guesses = model.generate_batch(50, &mut rng);
        assert_eq!(guesses.len(), 50);
        assert_eq!(model.name(), "Markov");
    }

    #[test]
    fn probability_model_gates_on_the_emitted_support() {
        let model = MarkovModel::train(&corpus(1_000), 2, 10);
        assert!(model.password_log_prob("jessica1").is_some());
        assert!(model.password_log_prob("").is_none());
        assert!(model.password_log_prob("waytoolongpassword").is_none());
        // Out-of-vocabulary characters can never be sampled.
        assert!(model.password_log_prob("héllo").is_none());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = MarkovModel::train(&corpus(1_000), 2, 10);
        let a: Vec<String> = model.generate_batch(20, &mut nnrng::seeded(7));
        let b: Vec<String> = model.generate_batch(20, &mut nnrng::seeded(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "order must be positive")]
    fn zero_order_rejected() {
        let _ = MarkovModel::train(&["a".to_string()], 0, 10);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_corpus_rejected() {
        let _ = MarkovModel::train(&[], 2, 10);
    }
}
