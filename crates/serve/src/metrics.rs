//! Lock-free serving metrics with a text exposition endpoint.
//!
//! Counters and histograms are plain relaxed atomics — recording a request
//! never takes a lock, so the hot path cost is a handful of fetch-adds.
//! `GET /metrics` renders a Prometheus-style text exposition: request
//! counts by endpoint and status class, the micro-batch size histogram, and
//! request latency with p50/p99 estimated from a log-spaced histogram.
//!
//! A sink built with [`Metrics::with_lanes`] additionally tracks the
//! sharded batcher per lane: queue depth gauges (`passflow_lane_depth`),
//! steal counters (`passflow_lane_steals_total`) and per-lane batch-size
//! histograms (`passflow_lane_batch_size_*`), all labelled `lane="i"`. The
//! aggregate batch histogram keeps its meaning — every lane records into
//! both. Lane methods on a sink built without lanes are bounds-checked
//! no-ops, so unit tests that don't care about sharding stay unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bucket bounds (inclusive) for the batch-size histogram.
const BATCH_BUCKETS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Upper bucket bounds (inclusive, microseconds) for the latency histogram.
const LATENCY_BUCKETS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
    10_000_000,
];

/// Endpoints tracked individually; everything else lands in `other`.
const ENDPOINTS: [&str; 8] = [
    "score", "logprob", "screen", "range", "models", "healthz", "metrics", "other",
];

/// Aggregated serving metrics. One instance is shared (behind an `Arc`) by
/// every connection handler and the batcher thread.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `requests[endpoint][status_class]` — status classes 2xx/4xx/5xx.
    requests: [[AtomicU64; 3]; 8],
    /// Batch-size histogram buckets plus overflow, and sum/count for means.
    batch_buckets: [AtomicU64; 10],
    batch_sum: AtomicU64,
    batch_ticks: AtomicU64,
    /// Latency histogram buckets plus overflow, and sum/count.
    latency_buckets: [AtomicU64; 15],
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
    /// Digest-store read failures observed by handlers (after retries).
    store_faults: AtomicU64,
    /// Jobs dropped because their deadline expired before scoring.
    deadline_expired: AtomicU64,
    /// Requests shed at enqueue time (batcher queue full).
    shed: AtomicU64,
    /// Digest-store breaker state: 0 closed, 1 open, 2 half-open.
    breaker_state: AtomicU64,
    /// Breaker state transitions since startup.
    breaker_transitions: AtomicU64,
    /// Per-lane batcher metrics; empty unless built via [`Metrics::with_lanes`].
    lanes: Vec<LaneMetric>,
}

/// Per-lane counters for the sharded batcher.
#[derive(Debug, Default)]
struct LaneMetric {
    /// Current queue depth (a gauge, written under the lane's queue lock).
    depth: AtomicU64,
    /// Jobs this lane stole from siblings' queues.
    steals: AtomicU64,
    /// Batch-size histogram buckets plus overflow, and sum/count.
    batch_buckets: [AtomicU64; 10],
    batch_sum: AtomicU64,
    batch_ticks: AtomicU64,
}

fn endpoint_index(endpoint: &str) -> usize {
    ENDPOINTS
        .iter()
        .position(|e| *e == endpoint)
        .unwrap_or(ENDPOINTS.len() - 1)
}

impl Metrics {
    /// Creates a zeroed metrics sink (no per-lane series).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a zeroed metrics sink tracking `lanes` batcher lanes.
    pub fn with_lanes(lanes: usize) -> Self {
        Metrics {
            lanes: (0..lanes.max(1)).map(|_| LaneMetric::default()).collect(),
            ..Self::default()
        }
    }

    /// Number of lanes this sink tracks (0 for a sink without lane series).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Publishes lane `lane`'s current queue depth (a gauge).
    pub fn set_lane_depth(&self, lane: usize, depth: u64) {
        if let Some(l) = self.lanes.get(lane) {
            l.depth.store(depth, Ordering::Relaxed);
        }
    }

    /// Records one job lane `lane` stole from a sibling's queue.
    pub fn record_lane_steal(&self, lane: usize) {
        if let Some(l) = self.lanes.get(lane) {
            l.steals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one tick of lane `lane` that scored `size` passwords.
    pub fn record_lane_batch(&self, lane: usize, size: usize) {
        let Some(l) = self.lanes.get(lane) else {
            return;
        };
        let size = size as u64;
        let idx = BATCH_BUCKETS
            .iter()
            .position(|&b| size <= b)
            .unwrap_or(BATCH_BUCKETS.len());
        l.batch_buckets[idx].fetch_add(1, Ordering::Relaxed);
        l.batch_sum.fetch_add(size, Ordering::Relaxed);
        l.batch_ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Steals recorded for lane `lane` so far (test hook).
    pub fn lane_steals(&self, lane: usize) -> u64 {
        self.lanes
            .get(lane)
            .map_or(0, |l| l.steals.load(Ordering::Relaxed))
    }

    /// Steals summed over every lane (test hook).
    pub fn total_lane_steals(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.steals.load(Ordering::Relaxed))
            .sum()
    }

    /// Ticks recorded for lane `lane` so far (test hook).
    pub fn lane_ticks(&self, lane: usize) -> u64 {
        self.lanes
            .get(lane)
            .map_or(0, |l| l.batch_ticks.load(Ordering::Relaxed))
    }

    /// Records one completed request for `endpoint` with `status`.
    pub fn record_request(&self, endpoint: &str, status: u16) {
        let class = match status {
            200..=299 => 0,
            400..=499 => 1,
            _ => 2,
        };
        self.requests[endpoint_index(endpoint)][class].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batcher tick that scored `size` passwords.
    pub fn record_batch(&self, size: usize) {
        let size = size as u64;
        let idx = BATCH_BUCKETS
            .iter()
            .position(|&b| size <= b)
            .unwrap_or(BATCH_BUCKETS.len());
        self.batch_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.batch_sum.fetch_add(size, Ordering::Relaxed);
        self.batch_ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's total latency (read → response flushed).
    pub fn record_latency(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one digest-store read failure (after the store's own
    /// bounded retries — these are the failures the breaker also sees).
    pub fn record_store_fault(&self) {
        self.store_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one job dropped because its deadline expired (a 504).
    pub fn record_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request shed at enqueue time (queue-full 503).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the breaker's current state and transition count (called
    /// by handlers after each breaker interaction — a gauge, not a counter).
    pub fn set_breaker(&self, state: u64, transitions: u64) {
        self.breaker_state.store(state, Ordering::Relaxed);
        self.breaker_transitions
            .store(transitions, Ordering::Relaxed);
    }

    /// Deadline-expired jobs so far (test hook).
    pub fn deadline_expired_total(&self) -> u64 {
        self.deadline_expired.load(Ordering::Relaxed)
    }

    /// Shed requests so far (test hook).
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Store faults so far (test hook).
    pub fn store_faults_total(&self) -> u64 {
        self.store_faults.load(Ordering::Relaxed)
    }

    /// Total requests recorded across all endpoints and statuses.
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .flatten()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Latency quantile in microseconds, estimated from the histogram
    /// (upper bound of the bucket containing the quantile).
    fn latency_quantile_us(&self, q: f64) -> u64 {
        let total = self.latency_count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.latency_buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return LATENCY_BUCKETS_US.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Renders the text exposition served at `GET /metrics`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# TYPE passflow_requests_total counter\n");
        for (ei, endpoint) in ENDPOINTS.iter().enumerate() {
            for (ci, class) in ["2xx", "4xx", "5xx"].iter().enumerate() {
                let n = self.requests[ei][ci].load(Ordering::Relaxed);
                if n > 0 || *endpoint != "other" {
                    let _ = writeln!(
                        out,
                        "passflow_requests_total{{endpoint=\"{endpoint}\",status=\"{class}\"}} {n}"
                    );
                }
            }
        }

        out.push_str("# TYPE passflow_batch_size histogram\n");
        let mut cumulative = 0u64;
        for (i, bound) in BATCH_BUCKETS.iter().enumerate() {
            cumulative += self.batch_buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "passflow_batch_size_bucket{{le=\"{bound}\"}} {cumulative}"
            );
        }
        cumulative += self.batch_buckets[BATCH_BUCKETS.len()].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "passflow_batch_size_bucket{{le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(
            out,
            "passflow_batch_size_sum {}",
            self.batch_sum.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "passflow_batch_size_count {}",
            self.batch_ticks.load(Ordering::Relaxed)
        );

        if !self.lanes.is_empty() {
            out.push_str("# TYPE passflow_lane_depth gauge\n");
            for (i, lane) in self.lanes.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "passflow_lane_depth{{lane=\"{i}\"}} {}",
                    lane.depth.load(Ordering::Relaxed)
                );
            }
            out.push_str("# TYPE passflow_lane_steals_total counter\n");
            for (i, lane) in self.lanes.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "passflow_lane_steals_total{{lane=\"{i}\"}} {}",
                    lane.steals.load(Ordering::Relaxed)
                );
            }
            out.push_str("# TYPE passflow_lane_batch_size histogram\n");
            for (i, lane) in self.lanes.iter().enumerate() {
                let mut cumulative = 0u64;
                for (b, bound) in BATCH_BUCKETS.iter().enumerate() {
                    cumulative += lane.batch_buckets[b].load(Ordering::Relaxed);
                    let _ = writeln!(
                        out,
                        "passflow_lane_batch_size_bucket{{lane=\"{i}\",le=\"{bound}\"}} {cumulative}"
                    );
                }
                cumulative += lane.batch_buckets[BATCH_BUCKETS.len()].load(Ordering::Relaxed);
                let _ = writeln!(
                    out,
                    "passflow_lane_batch_size_bucket{{lane=\"{i}\",le=\"+Inf\"}} {cumulative}"
                );
                let _ = writeln!(
                    out,
                    "passflow_lane_batch_size_sum{{lane=\"{i}\"}} {}",
                    lane.batch_sum.load(Ordering::Relaxed)
                );
                let _ = writeln!(
                    out,
                    "passflow_lane_batch_size_count{{lane=\"{i}\"}} {}",
                    lane.batch_ticks.load(Ordering::Relaxed)
                );
            }
        }

        out.push_str("# TYPE passflow_request_latency_seconds summary\n");
        for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
            let _ = writeln!(
                out,
                "passflow_request_latency_seconds{{quantile=\"{label}\"}} {:.6}",
                self.latency_quantile_us(q) as f64 / 1e6
            );
        }
        let _ = writeln!(
            out,
            "passflow_request_latency_seconds_sum {:.6}",
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "passflow_request_latency_seconds_count {}",
            self.latency_count.load(Ordering::Relaxed)
        );

        out.push_str("# TYPE passflow_store_faults_total counter\n");
        let _ = writeln!(
            out,
            "passflow_store_faults_total {}",
            self.store_faults.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE passflow_deadline_expired_total counter\n");
        let _ = writeln!(
            out,
            "passflow_deadline_expired_total {}",
            self.deadline_expired.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE passflow_shed_total counter\n");
        let _ = writeln!(
            out,
            "passflow_shed_total {}",
            self.shed.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE passflow_breaker_state gauge\n");
        let _ = writeln!(
            out,
            "passflow_breaker_state {}",
            self.breaker_state.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE passflow_breaker_transitions_total counter\n");
        let _ = writeln!(
            out,
            "passflow_breaker_transitions_total {}",
            self.breaker_transitions.load(Ordering::Relaxed)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new();
        m.record_request("score", 200);
        m.record_request("score", 200);
        m.record_request("score", 400);
        m.record_request("metrics", 200);
        m.record_request("nonsense", 500);
        assert_eq!(m.total_requests(), 5);
        let text = m.render();
        assert!(text.contains("passflow_requests_total{endpoint=\"score\",status=\"2xx\"} 2"));
        assert!(text.contains("passflow_requests_total{endpoint=\"score\",status=\"4xx\"} 1"));
        assert!(text.contains("passflow_requests_total{endpoint=\"other\",status=\"5xx\"} 1"));
    }

    #[test]
    fn batch_histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        for size in [1, 1, 3, 64, 500] {
            m.record_batch(size);
        }
        let text = m.render();
        assert!(text.contains("passflow_batch_size_bucket{le=\"1\"} 2"));
        assert!(text.contains("passflow_batch_size_bucket{le=\"4\"} 3"));
        assert!(text.contains("passflow_batch_size_bucket{le=\"64\"} 4"));
        assert!(text.contains("passflow_batch_size_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("passflow_batch_size_sum 569"));
        assert!(text.contains("passflow_batch_size_count 5"));
    }

    #[test]
    fn latency_quantiles_track_the_distribution() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record_latency(Duration::from_micros(80));
        }
        m.record_latency(Duration::from_millis(40));
        // p50 lands in the ≤100µs bucket, p99 well below the 40ms outlier…
        assert_eq!(m.latency_quantile_us(0.5), 100);
        assert_eq!(m.latency_quantile_us(0.99), 100);
        // …and p999 would catch it (bucket upper bound 50ms).
        assert_eq!(m.latency_quantile_us(0.999), 50_000);
        let text = m.render();
        assert!(text.contains("passflow_request_latency_seconds{quantile=\"0.5\"} 0.000100"));
        assert!(text.contains("passflow_request_latency_seconds_count 100"));
    }

    #[test]
    fn lane_series_render_only_when_lanes_exist() {
        let plain = Metrics::new();
        assert_eq!(plain.lane_count(), 0);
        // Lane methods on a lane-less sink are no-ops, not panics.
        plain.set_lane_depth(3, 9);
        plain.record_lane_steal(3);
        plain.record_lane_batch(3, 5);
        assert!(!plain.render().contains("passflow_lane_"));

        let m = Metrics::with_lanes(2);
        assert_eq!(m.lane_count(), 2);
        m.set_lane_depth(0, 7);
        m.record_lane_steal(1);
        m.record_lane_steal(1);
        m.record_lane_batch(0, 3);
        m.record_lane_batch(0, 64);
        m.record_lane_batch(1, 1);
        let text = m.render();
        assert!(text.contains("passflow_lane_depth{lane=\"0\"} 7"));
        assert!(text.contains("passflow_lane_depth{lane=\"1\"} 0"));
        assert!(text.contains("passflow_lane_steals_total{lane=\"1\"} 2"));
        assert!(text.contains("passflow_lane_batch_size_bucket{lane=\"0\",le=\"4\"} 1"));
        assert!(text.contains("passflow_lane_batch_size_bucket{lane=\"0\",le=\"64\"} 2"));
        assert!(text.contains("passflow_lane_batch_size_sum{lane=\"0\"} 67"));
        assert!(text.contains("passflow_lane_batch_size_count{lane=\"1\"} 1"));
        assert_eq!(m.lane_steals(1), 2);
        assert_eq!(m.total_lane_steals(), 2);
        assert_eq!(m.lane_ticks(0), 2);
        // Out-of-range lanes stay no-ops.
        m.record_lane_batch(9, 1);
        assert_eq!(m.lane_ticks(9), 0);
    }

    #[test]
    fn robustness_counters_render() {
        let m = Metrics::new();
        m.record_store_fault();
        m.record_deadline_expired();
        m.record_deadline_expired();
        m.record_shed();
        m.set_breaker(1, 3);
        let text = m.render();
        assert!(text.contains("passflow_store_faults_total 1"));
        assert!(text.contains("passflow_deadline_expired_total 2"));
        assert!(text.contains("passflow_shed_total 1"));
        assert!(text.contains("passflow_breaker_state 1"));
        assert!(text.contains("passflow_breaker_transitions_total 3"));
        assert_eq!(m.deadline_expired_total(), 2);
        assert_eq!(m.shed_total(), 1);
        assert_eq!(m.store_faults_total(), 1);
    }
}
