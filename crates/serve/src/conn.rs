//! Connection multiplexing: a bounded handler pool with idle-socket
//! parking, so 1k idle keep-alive connections cost ~0 threads.
//!
//! The thread-per-connection model spent a parked OS thread per idle
//! keep-alive socket. This module replaces it with three pieces, all
//! std-only:
//!
//! * an **idle set** of non-blocking parked sockets, owned by one
//!   **poller** thread that sweeps them with `TcpStream::peek` — a
//!   readiness probe that consumes nothing: `WouldBlock` means still idle,
//!   `Ok(0)` means the peer closed (reap), `Ok(n)` means a request has
//!   started arriving (dispatch);
//! * a **ready queue** feeding a bounded pool of **handler workers**. A
//!   worker checks a connection out, switches it to blocking mode, serves
//!   exactly one request through the unchanged `http` layer (per-read
//!   timeouts, the slow-loris [`BudgetReader`] budget and write timeouts
//!   all apply exactly as before), then parks it back — or requeues it
//!   immediately if pipelined bytes are already buffered in userspace,
//!   where `peek` on the socket could never see them;
//! * a **reading registry** of sockets currently blocked in a request
//!   *read*. Shutdown closes exactly these (their request has not fully
//!   arrived — nothing accepted is dropped) plus every parked socket,
//!   while a worker that is routing or writing a response is spared until
//!   the response is flushed. These are the same shutdown semantics the
//!   thread-per-connection server had, keyed off "is the request fully
//!   read" instead of a per-connection busy bit.
//!
//! A connection therefore cycles through three states — **parked**
//! (non-blocking, watched by the poller), **ready** (queued for a worker)
//! and **checked-out** (owned by a worker, blocking) — and is always owned
//! by exactly one thread, so no per-connection lock exists.
//!
//! The poller's sweep interval adapts: any dispatch (or a newly parked or
//! accepted socket) snaps it to [`MIN_POLL`], and consecutive empty sweeps
//! back it off exponentially to [`MAX_POLL`] — a server with a thousand
//! parked sockets and no traffic does a few peeks-per-socket every
//! [`MAX_POLL`] instead of burning a core, at the cost of up to
//! [`MAX_POLL`] of first-byte latency after a long idle gap. Threads are
//! bounded by the worker pool (`ServerConfig::handler_threads`), not by
//! connection count: an *idle* socket costs a queue slot and two file
//! descriptors; only an *in-flight request* costs a thread.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::http::BudgetReader;

/// Floor of the adaptive sweep interval (active traffic).
pub(crate) const MIN_POLL: Duration = Duration::from_micros(500);
/// Ceiling of the adaptive sweep interval (long-idle connections).
pub(crate) const MAX_POLL: Duration = Duration::from_millis(25);
/// How long the poller parks when it has no connections at all.
const EMPTY_POLL: Duration = Duration::from_millis(50);

/// One multiplexed connection, owned by exactly one thread at a time.
pub(crate) struct Conn {
    /// Monotonic id (used by the reading registry).
    pub(crate) id: u64,
    /// Buffered reader over a socket clone, wrapped in the slow-loris
    /// budget. Persists across parks so pipelined bytes survive.
    pub(crate) reader: BudgetReader<BufReader<TcpStream>>,
    /// Buffered writer over the original socket.
    pub(crate) writer: BufWriter<TcpStream>,
    /// When this connection was last parked (for the idle timeout).
    idle_since: Instant,
}

impl Conn {
    /// The underlying socket (shared by reader and writer clones — mode
    /// changes and `peek` act on the one OS socket).
    pub(crate) fn socket(&self) -> &TcpStream {
        self.reader.get_ref().get_ref()
    }

    /// Whether pipelined request bytes already sit in the userspace read
    /// buffer (such a connection must be requeued, never parked: `peek`
    /// on the socket cannot see them).
    pub(crate) fn has_buffered_input(&self) -> bool {
        !self.reader.get_ref().buffer().is_empty()
    }
}

/// The shared multiplexer state: idle set, ready queue, reading registry.
pub(crate) struct Mux {
    /// Parked (non-blocking) connections, swept by the poller.
    idle: Mutex<Vec<Conn>>,
    /// Wakes the poller early (new parked/accepted socket, stop).
    idle_wake: Condvar,
    /// Connections with a request arriving, awaiting a worker.
    ready: Mutex<VecDeque<Conn>>,
    ready_wake: Condvar,
    /// Socket clones for connections currently blocked in a request
    /// *read*; shutdown closes exactly these so no worker waits out a
    /// read timeout on a request that will never finish arriving.
    reading: Mutex<HashMap<u64, TcpStream>>,
    stop: AtomicBool,
    /// Registered connections (accepted and not yet dropped).
    active: AtomicUsize,
    next_id: AtomicU64,
    /// Parked sockets idle longer than this are reaped.
    idle_timeout: Duration,
}

impl Mux {
    pub(crate) fn new(idle_timeout: Duration) -> Mux {
        Mux {
            idle: Mutex::new(Vec::new()),
            idle_wake: Condvar::new(),
            ready: Mutex::new(VecDeque::new()),
            ready_wake: Condvar::new(),
            reading: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            idle_timeout,
        }
    }

    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Registered connections right now (for the accept-time limit and
    /// the `/healthz` connections component).
    pub(crate) fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Parked connections right now (for `/healthz`).
    pub(crate) fn idle_connections(&self) -> usize {
        self.idle.lock().len()
    }

    /// Registers a freshly accepted socket and parks it (its first
    /// request will arrive shortly; the poller dispatches on first byte).
    pub(crate) fn register(&self, stream: TcpStream, read_budget: Duration) -> std::io::Result<()> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let read_half = stream.try_clone()?;
        let conn = Conn {
            id,
            reader: BudgetReader::new(BufReader::new(read_half), read_budget),
            writer: BufWriter::new(stream),
            idle_since: Instant::now(),
        };
        self.active.fetch_add(1, Ordering::SeqCst);
        self.park(conn);
        Ok(())
    }

    /// Parks a connection into the idle set (non-blocking) and nudges the
    /// poller. During shutdown the connection is dropped instead.
    pub(crate) fn park(&self, mut conn: Conn) {
        if self.stopping() || conn.socket().set_nonblocking(true).is_err() {
            self.discard(conn);
            return;
        }
        conn.idle_since = Instant::now();
        self.idle.lock().push(conn);
        self.idle_wake.notify_all();
    }

    /// Queues a connection for a worker (request bytes are waiting).
    pub(crate) fn enqueue_ready(&self, conn: Conn) {
        if self.stopping() {
            self.discard(conn);
            return;
        }
        self.ready.lock().push_back(conn);
        self.ready_wake.notify_one();
    }

    /// Unregisters and drops a connection (sockets close on drop).
    pub(crate) fn discard(&self, conn: Conn) {
        drop(conn);
        self.active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Blocks until a ready connection is available; `None` on shutdown.
    pub(crate) fn next_ready(&self) -> Option<Conn> {
        let mut queue = self.ready.lock();
        loop {
            if self.stopping() {
                return None;
            }
            if let Some(conn) = queue.pop_front() {
                return Some(conn);
            }
            queue = self.ready_wake.wait(queue);
        }
    }

    /// Marks `conn` as blocked in a request read (stores a socket clone
    /// shutdown can close). Pair with [`done_reading`](Self::done_reading).
    pub(crate) fn note_reading(&self, conn: &Conn) {
        if let Ok(clone) = conn.socket().try_clone() {
            self.reading.lock().insert(conn.id, clone);
        }
    }

    /// Clears the reading mark: the request is fully read, and from here
    /// to the flushed response the connection is spared by shutdown.
    pub(crate) fn done_reading(&self, id: u64) {
        self.reading.lock().remove(&id);
    }

    /// Begins shutdown: stops poller and workers, closes every socket
    /// currently blocked in a request read (their handlers wake with a
    /// read error), and leaves response-writing workers alone.
    pub(crate) fn begin_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for stream in self.reading.lock().values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        self.idle_wake.notify_all();
        self.ready_wake.notify_all();
    }

    /// Drops every parked and queued connection (the shutdown tail; idle
    /// peers' next request had not arrived, so nothing accepted is lost).
    pub(crate) fn drain(&self) {
        let idle: Vec<Conn> = std::mem::take(&mut *self.idle.lock());
        for conn in idle {
            self.discard(conn);
        }
        let ready: Vec<Conn> = self.ready.lock().drain(..).collect();
        for conn in ready {
            self.discard(conn);
        }
    }

    /// The poller loop: sweep parked sockets, dispatch readiness, reap
    /// closed and over-idle peers, adapt the sweep interval to traffic.
    pub(crate) fn poll_loop(&self) {
        let mut interval = MIN_POLL;
        loop {
            let idle = self.idle.lock();
            if self.stopping() {
                break;
            }
            let timeout = if idle.is_empty() {
                EMPTY_POLL
            } else {
                interval
            };
            let (mut idle, timed_out) = self.idle_wake.wait_timeout(idle, timeout);
            if self.stopping() {
                break;
            }
            let mut dispatched = 0usize;
            let now = Instant::now();
            let mut probe = [0u8; 1];
            let mut i = 0;
            while i < idle.len() {
                match idle[i].socket().peek(&mut probe) {
                    // Still idle — reap only if parked beyond the timeout.
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if now.duration_since(idle[i].idle_since) > self.idle_timeout {
                            let conn = idle.swap_remove(i);
                            self.discard(conn);
                        } else {
                            i += 1;
                        }
                    }
                    // First byte of a request: hand to a worker (blocking
                    // mode again; a failed toggle poisons the socket).
                    Ok(n) if n > 0 => {
                        let conn = idle.swap_remove(i);
                        if conn.socket().set_nonblocking(false).is_ok() {
                            self.ready.lock().push_back(conn);
                            self.ready_wake.notify_one();
                            dispatched += 1;
                        } else {
                            self.discard(conn);
                        }
                    }
                    // EOF or socket error: the peer is gone.
                    _ => {
                        let conn = idle.swap_remove(i);
                        self.discard(conn);
                    }
                }
            }
            drop(idle);
            // A dispatch or an early wake (new socket) means traffic:
            // sweep fast. Consecutive quiet sweeps back off.
            interval = if dispatched > 0 || !timed_out {
                MIN_POLL
            } else {
                (interval * 2).min(MAX_POLL)
            };
        }
        // Stop: drop every parked connection (lock released first — the
        // break paths above still hold the guard).
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::TcpListener;
    use std::sync::Arc;

    fn pipe() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn poller_dispatches_on_first_byte_and_reaps_closed_peers() {
        let mux = Arc::new(Mux::new(Duration::from_secs(60)));
        let (mut client_a, server_a) = pipe();
        let (client_b, server_b) = pipe();
        mux.register(server_a, Duration::from_secs(5)).unwrap();
        mux.register(server_b, Duration::from_secs(5)).unwrap();
        assert_eq!(mux.active_connections(), 2);

        let poller = {
            let mux = Arc::clone(&mux);
            std::thread::spawn(move || mux.poll_loop())
        };
        // A written byte promotes the connection to the ready queue…
        client_a.write_all(b"G").unwrap();
        let conn = mux.next_ready().expect("dispatch before shutdown");
        assert!(!conn.has_buffered_input(), "byte still in the socket");
        mux.discard(conn);
        // …and a closed peer is reaped without a worker.
        drop(client_b);
        let deadline = Instant::now() + Duration::from_secs(10);
        while mux.active_connections() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(mux.active_connections(), 0, "closed peer must be reaped");

        mux.begin_stop();
        poller.join().unwrap();
        assert!(mux.next_ready().is_none(), "workers stop on shutdown");
    }

    #[test]
    fn over_idle_connections_are_reaped() {
        let mux = Arc::new(Mux::new(Duration::from_millis(50)));
        let (client, server) = pipe();
        mux.register(server, Duration::from_secs(5)).unwrap();
        let poller = {
            let mux = Arc::clone(&mux);
            std::thread::spawn(move || mux.poll_loop())
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        while mux.active_connections() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(mux.active_connections(), 0, "idle timeout must reap");
        drop(client);
        mux.begin_stop();
        poller.join().unwrap();
    }
}
