/root/repo/target/debug/deps/passflow_baselines-c98cafd8be9a9289.d: crates/baselines/src/lib.rs crates/baselines/src/cwae.rs crates/baselines/src/gan.rs crates/baselines/src/guesser.rs crates/baselines/src/markov.rs crates/baselines/src/pcfg.rs Cargo.toml

/root/repo/target/debug/deps/libpassflow_baselines-c98cafd8be9a9289.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cwae.rs crates/baselines/src/gan.rs crates/baselines/src/guesser.rs crates/baselines/src/markov.rs crates/baselines/src/pcfg.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/cwae.rs:
crates/baselines/src/gan.rs:
crates/baselines/src/guesser.rs:
crates/baselines/src/markov.rs:
crates/baselines/src/pcfg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
