//! The password-guessing attack loop and its evaluation reports.
//!
//! [`run_attack`] implements the evaluation protocol behind Tables II and
//! III: generate a budget of guesses with one of the paper's strategies
//! (static sampling, Dynamic Sampling, Dynamic Sampling + Gaussian
//! smoothing), and report — at each intermediate budget checkpoint — how
//! many guesses were unique and how many matched the held-out test set.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use passflow_nn::rng as nnrng;

use crate::flow::PassFlow;
use crate::prior::Prior;
use crate::sample::{GuessingStrategy, MatchedLatents};

/// Configuration of a guessing attack.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Total number of guesses to generate.
    pub num_guesses: u64,
    /// How many latent samples are drawn and inverted per batch.
    pub batch_size: usize,
    /// Generation strategy (static / dynamic / dynamic + smoothing).
    pub strategy: GuessingStrategy,
    /// Intermediate budgets at which a [`CheckpointReport`] is recorded.
    /// The final budget is always reported, whether listed here or not.
    pub checkpoints: Vec<u64>,
    /// RNG seed.
    pub seed: u64,
    /// How many non-matched guesses to keep for qualitative analysis
    /// (Table IV).
    pub nonmatched_sample_size: usize,
}

impl AttackConfig {
    /// Creates a static-sampling attack with a single final checkpoint.
    pub fn quick(num_guesses: u64) -> Self {
        AttackConfig {
            num_guesses,
            batch_size: 1024,
            strategy: GuessingStrategy::Static,
            checkpoints: Vec::new(),
            seed: 0,
            nonmatched_sample_size: 40,
        }
    }

    /// Sets the strategy (builder style).
    #[must_use]
    pub fn with_strategy(mut self, strategy: GuessingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the checkpoints (builder style). They are sorted and
    /// deduplicated; checkpoints beyond the total budget are dropped.
    #[must_use]
    pub fn with_checkpoints(mut self, checkpoints: Vec<u64>) -> Self {
        self.checkpoints = checkpoints;
        self
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sampling batch size (builder style).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    fn normalized_checkpoints(&self) -> Vec<u64> {
        let mut cps: Vec<u64> = self
            .checkpoints
            .iter()
            .copied()
            .filter(|&c| c > 0 && c <= self.num_guesses)
            .collect();
        if !cps.contains(&self.num_guesses) {
            cps.push(self.num_guesses);
        }
        cps.sort_unstable();
        cps.dedup();
        cps
    }
}

/// Guessing statistics at a given budget.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointReport {
    /// Number of guesses generated so far.
    pub guesses: u64,
    /// Number of distinct guesses generated so far (Table III "Unique").
    pub unique: u64,
    /// Number of distinct test-set passwords matched so far
    /// (Table III "Matched").
    pub matched: u64,
    /// Matched passwords as a percentage of the test set (Table II).
    pub matched_percent: f64,
}

/// The outcome of a full guessing attack.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Strategy label (e.g. "PassFlow-Dynamic+GS").
    pub strategy: String,
    /// Reports at each requested checkpoint (ascending budget). The last
    /// entry corresponds to the full budget.
    pub checkpoints: Vec<CheckpointReport>,
    /// The matched test-set passwords.
    pub matched_passwords: Vec<String>,
    /// A sample of generated guesses that did not match (Table IV).
    pub nonmatched_samples: Vec<String>,
}

impl AttackOutcome {
    /// The report at the full budget.
    ///
    /// # Panics
    ///
    /// Panics if the outcome contains no checkpoints (cannot happen for
    /// outcomes produced by [`run_attack`]).
    pub fn final_report(&self) -> &CheckpointReport {
        self.checkpoints.last().expect("at least one checkpoint")
    }

    /// The report at the given budget, if that budget was a checkpoint.
    pub fn at_budget(&self, guesses: u64) -> Option<&CheckpointReport> {
        self.checkpoints.iter().find(|c| c.guesses == guesses)
    }
}

/// Runs a guessing attack with the given flow and strategy against a set of
/// target passwords (the cleaned, unique test set).
///
/// The match percentage is computed relative to `targets.len()`, mirroring
/// the paper's "% of matched passwords over the RockYou test set".
pub fn run_attack(
    flow: &PassFlow,
    targets: &HashSet<String>,
    config: &AttackConfig,
) -> AttackOutcome {
    let mut rng = nnrng::seeded(config.seed);
    let checkpoints = config.normalized_checkpoints();
    let standard_prior = flow.prior();
    let mut dynamic_params = config.strategy.dynamic_params().copied();
    let smoothing = config.strategy.smoothing().copied();

    let mut generated: HashSet<String> = HashSet::new();
    let mut matched: HashSet<String> = HashSet::new();
    let mut matched_in_order: Vec<String> = Vec::new();
    let mut matched_latents = MatchedLatents::new();
    let mut nonmatched_samples: Vec<String> = Vec::new();
    let mut reports: Vec<CheckpointReport> = Vec::with_capacity(checkpoints.len());

    let mut guesses_made: u64 = 0;
    let mut next_checkpoint_idx = 0usize;

    while guesses_made < config.num_guesses {
        // Keep batches aligned with the next checkpoint so reports land on
        // the exact budgets the paper uses.
        let until_checkpoint = checkpoints[next_checkpoint_idx] - guesses_made;
        let n = (config.batch_size as u64).min(until_checkpoint) as usize;

        // Draw the latent batch from the active prior.
        let z = match dynamic_params.as_mut() {
            Some(params) => match matched_latents.build_prior(params) {
                Some(mixture) => mixture.sample(n, &mut rng),
                None => standard_prior.sample(n, &mut rng),
            },
            None => standard_prior.sample(n, &mut rng),
        };
        let x = flow.inverse(&z);

        for i in 0..n {
            let features = x.row_slice(i);
            let mut guess = flow.encoder().decode(features);

            // Data-space Gaussian smoothing: if this guess collides with one
            // we already generated, incrementally perturb the data-space
            // point until it decodes to something new (Section III-C).
            if let Some(smoothing) = smoothing {
                if generated.contains(&guess) {
                    let encoder = flow.encoder();
                    if let Some(perturbed) =
                        smoothing.perturb_until(features, &mut rng, |candidate| {
                            !generated.contains(&encoder.decode(candidate))
                        })
                    {
                        guess = encoder.decode(&perturbed);
                    }
                }
            }

            guesses_made += 1;
            let is_new = generated.insert(guess.clone());

            if targets.contains(&guess) {
                if matched.insert(guess.clone()) {
                    matched_in_order.push(guess);
                    if dynamic_params.is_some() {
                        matched_latents.insert(z.row_slice(i).to_vec());
                    }
                }
            } else if is_new && nonmatched_samples.len() < config.nonmatched_sample_size {
                nonmatched_samples.push(guess);
            }
        }

        while next_checkpoint_idx < checkpoints.len()
            && guesses_made >= checkpoints[next_checkpoint_idx]
        {
            reports.push(CheckpointReport {
                guesses: checkpoints[next_checkpoint_idx],
                unique: generated.len() as u64,
                matched: matched.len() as u64,
                matched_percent: if targets.is_empty() {
                    0.0
                } else {
                    100.0 * matched.len() as f64 / targets.len() as f64
                },
            });
            next_checkpoint_idx += 1;
        }
        if next_checkpoint_idx >= checkpoints.len() {
            break;
        }
    }

    AttackOutcome {
        strategy: config.strategy.label().to_string(),
        checkpoints: reports,
        matched_passwords: matched_in_order,
        nonmatched_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlowConfig, TrainConfig};
    use crate::sample::{DynamicParams, GaussianSmoothing};
    use crate::train::train;
    use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};

    /// A small trained flow and a matching test set, shared by the tests in
    /// this module (training even a tiny flow dominates test time, so do it
    /// once).
    fn trained_fixture() -> (PassFlow, HashSet<String>) {
        use passflow_nn::Tensor;
        use std::sync::OnceLock;
        static FIXTURE: OnceLock<(Vec<Tensor>, Vec<String>)> = OnceLock::new();
        let (weights, test) = FIXTURE.get_or_init(|| {
            let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(4_000))
                .generate(77);
            let split = corpus.paper_split(0.8, 1_500, 7);
            let mut rng = nnrng::seeded(5);
            let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
            train(
                &flow,
                &split.train,
                &TrainConfig::tiny().with_epochs(4).with_batch_size(256),
            )
            .unwrap();
            (flow.weight_snapshot(), split.test_unique)
        });
        let mut rng = nnrng::seeded(5);
        let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
        flow.load_weights(weights).unwrap();
        (flow, test.iter().cloned().collect())
    }

    #[test]
    fn static_attack_reports_consistent_counts() {
        let (flow, targets) = trained_fixture();
        let outcome = run_attack(
            &flow,
            &targets,
            &AttackConfig::quick(2_000).with_checkpoints(vec![500, 1_000]),
        );
        assert_eq!(outcome.strategy, "PassFlow-Static");
        assert_eq!(outcome.checkpoints.len(), 3);
        assert_eq!(outcome.checkpoints[0].guesses, 500);
        assert_eq!(outcome.checkpoints[1].guesses, 1_000);
        assert_eq!(outcome.final_report().guesses, 2_000);
        // Monotonicity: unique and matched never decrease with budget.
        for pair in outcome.checkpoints.windows(2) {
            assert!(pair[1].unique >= pair[0].unique);
            assert!(pair[1].matched >= pair[0].matched);
        }
        for c in &outcome.checkpoints {
            assert!(c.unique <= c.guesses);
            assert!(c.matched as usize <= targets.len());
            assert!((0.0..=100.0).contains(&c.matched_percent));
        }
        assert_eq!(
            outcome.final_report().matched as usize,
            outcome.matched_passwords.len()
        );
        assert!(outcome.at_budget(500).is_some());
        assert!(outcome.at_budget(123).is_none());
    }

    #[test]
    fn matched_passwords_are_really_in_the_target_set() {
        let (flow, targets) = trained_fixture();
        let outcome = run_attack(&flow, &targets, &AttackConfig::quick(3_000));
        for p in &outcome.matched_passwords {
            assert!(targets.contains(p));
        }
        for p in &outcome.nonmatched_samples {
            assert!(!targets.contains(p));
        }
        assert!(outcome.nonmatched_samples.len() <= 40);
    }

    #[test]
    fn attack_is_deterministic_for_fixed_seed() {
        let (flow, targets) = trained_fixture();
        let a = run_attack(&flow, &targets, &AttackConfig::quick(1_000).with_seed(3));
        let b = run_attack(&flow, &targets, &AttackConfig::quick(1_000).with_seed(3));
        let c = run_attack(&flow, &targets, &AttackConfig::quick(1_000).with_seed(4));
        assert_eq!(a, b);
        assert_ne!(a.final_report().unique, 0);
        // Different seeds explore differently (unique counts almost surely
        // differ on 1 000 guesses).
        assert_ne!(
            (a.final_report().unique, a.final_report().matched),
            (c.final_report().unique, c.final_report().matched)
        );
    }

    #[test]
    fn dynamic_attack_uses_matches_and_still_reports_consistently() {
        let (flow, targets) = trained_fixture();
        let strategy = GuessingStrategy::Dynamic(DynamicParams::new(0, 0.12, 4));
        let outcome = run_attack(
            &flow,
            &targets,
            &AttackConfig::quick(3_000).with_strategy(strategy),
        );
        assert_eq!(outcome.strategy, "PassFlow-Dynamic");
        let final_report = outcome.final_report();
        assert!(final_report.unique <= final_report.guesses);
        assert_eq!(final_report.matched as usize, outcome.matched_passwords.len());
    }

    #[test]
    fn smoothing_increases_unique_guesses_under_dynamic_sampling() {
        let (flow, targets) = trained_fixture();
        // Aggressively concentrated dynamic sampling to force collisions.
        let params = DynamicParams::new(0, 0.03, 1_000);
        let without = run_attack(
            &flow,
            &targets,
            &AttackConfig::quick(2_000)
                .with_strategy(GuessingStrategy::Dynamic(params))
                .with_seed(11),
        );
        let with = run_attack(
            &flow,
            &targets,
            &AttackConfig::quick(2_000)
                .with_strategy(GuessingStrategy::DynamicWithSmoothing {
                    params,
                    smoothing: GaussianSmoothing::new(0.02, 6),
                })
                .with_seed(11),
        );
        assert!(
            with.final_report().unique >= without.final_report().unique,
            "GS should not reduce uniques: {} vs {}",
            with.final_report().unique,
            without.final_report().unique
        );
    }

    #[test]
    fn checkpoints_are_normalized_and_bounded() {
        let config = AttackConfig::quick(1_000)
            .with_checkpoints(vec![5_000, 200, 0, 200, 800]);
        assert_eq!(config.normalized_checkpoints(), vec![200, 800, 1_000]);
        let config = AttackConfig::quick(100);
        assert_eq!(config.normalized_checkpoints(), vec![100]);
    }

    #[test]
    fn empty_target_set_yields_zero_percent() {
        let (flow, _) = trained_fixture();
        let outcome = run_attack(&flow, &HashSet::new(), &AttackConfig::quick(200));
        assert_eq!(outcome.final_report().matched, 0);
        assert_eq!(outcome.final_report().matched_percent, 0.0);
    }
}
