//! Maximum-likelihood training of a [`PassFlow`] model (Equation 8).
//!
//! The training subsystem minimizes the exact negative log-likelihood with
//! Adam — the paper's Section IV-D setup — on top of a data-parallel
//! execution model:
//!
//! * [`Trainer`] — the flow trainer: each batch is sharded across
//!   gradient workers with a deterministic fixed-order reduction (results
//!   are worker-count invariant, bit for bit), with gradient accumulation,
//!   a validation split, best-on-validation selection, early stopping and
//!   resumable `PASSFLOW v2` checkpoints.
//! * [`TrainLoop`] / [`EpochDriver`] — the epoch/batch driver shared with
//!   the GAN and CWAE baselines.
//! * [`Schedule`] — warmup+cosine / step learning-rate schedules.
//! * [`EarlyStop`] / [`EarlyStopConfig`] — plateau detection on the
//!   monitored NLL.
//!
//! The free function [`train`] keeps the original one-call API and is a
//! thin wrapper over [`Trainer`].

mod driver;
mod early_stop;
mod schedule;
mod trainer;

pub use driver::{EpochDriver, LoopControl, StepCtx, TrainLoop};
pub use early_stop::{EarlyStop, EarlyStopConfig, EpochVerdict};
pub use schedule::Schedule;
pub use trainer::Trainer;

use serde::{Deserialize, Serialize};

use passflow_nn::{AdamState, Tensor};

use crate::config::TrainConfig;
use crate::error::Result;
use crate::flow::PassFlow;

/// Per-epoch record of the training trajectory.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training NLL over the epoch's batches (nats per password).
    pub train_nll: f32,
    /// Mean NLL over the held-out validation split, when one is configured.
    pub val_nll: Option<f32>,
    /// Learning rate of the epoch's last optimizer step.
    pub learning_rate: f32,
}

impl EpochStats {
    /// The NLL used for best-epoch selection and early stopping:
    /// validation when available, training otherwise.
    pub fn monitored_nll(&self) -> f32 {
        self.val_nll.unwrap_or(self.train_nll)
    }
}

/// Summary of a training run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Loss trajectory, one entry per epoch actually run. For a resumed run
    /// this includes the epochs recorded before the checkpoint, so the
    /// report always covers the whole logical run.
    pub epochs: Vec<EpochStats>,
    /// Number of encoded examples in the training split.
    pub num_examples: usize,
    /// Number of encoded examples held out for validation.
    pub num_validation: usize,
    /// Index of the epoch whose weights were kept (lowest monitored NLL;
    /// the paper picks "the best performing epoch" for generation).
    pub best_epoch: usize,
    /// Whether the run ended through the early-stopping rule rather than
    /// the epoch budget.
    pub stopped_early: bool,
}

impl TrainingReport {
    /// Final (last-epoch) training NLL, or `None` for an empty run.
    pub fn final_nll(&self) -> Option<f32> {
        self.epochs.last().map(|e| e.train_nll)
    }

    /// Lowest training NLL reached, or `None` for an empty run.
    pub fn best_nll(&self) -> Option<f32> {
        // Explicit compare instead of a `fold(…, f32::min)` reduction; see
        // Tensor::max for the target-cpu=native miscompilation this avoids.
        let mut best: Option<f32> = None;
        for e in &self.epochs {
            if best.is_none_or(|b| e.train_nll < b) {
                best = Some(e.train_nll);
            }
        }
        best
    }

    /// Lowest validation NLL reached, or `None` if no split was configured.
    pub fn best_val_nll(&self) -> Option<f32> {
        let mut best: Option<f32> = None;
        for e in &self.epochs {
            if let Some(v) = e.val_nll {
                if best.is_none_or(|b| v < b) {
                    best = Some(v);
                }
            }
        }
        best
    }
}

/// Mid-run trainer state serialized into `PASSFLOW v2` checkpoints.
///
/// Together with the flow weights this captures everything a bit-exact
/// resume needs: the training configuration (validated against the resuming
/// trainer's), the position in the run, the Adam moments, the best-epoch
/// selection and the early-stop counter. The RNG needs no serialized
/// internals — all randomness is drawn from streams keyed by
/// `(seed, epoch, batch)`, so `next_epoch` *is* the RNG state.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainState {
    /// Training configuration the checkpoint was written under.
    pub config: TrainConfig,
    /// First epoch the resumed run must execute.
    pub next_epoch: usize,
    /// Optimizer steps taken so far.
    pub steps: u64,
    /// Adam moments and step count, aligned to the flow's parameter order.
    pub optimizer: AdamState,
    /// Epoch of the best monitored NLL so far.
    pub best_epoch: usize,
    /// Best monitored NLL so far (`+inf` before the first epoch).
    pub best_metric: f32,
    /// Weight snapshot of the best epoch (empty before the first epoch).
    pub best_weights: Vec<Tensor>,
    /// Consecutive epochs without significant improvement.
    pub stale_epochs: usize,
    /// Whether the early-stopping rule had already fired when this
    /// checkpoint was written. A resumed run honors the stop instead of
    /// training epochs the uninterrupted run never ran.
    pub stopped: bool,
    /// Deterministic digest of the encoded training corpus. A resume with
    /// a different corpus would shift the validation split, the batch
    /// partition and every step ordinal, so it is rejected like any other
    /// trajectory-relevant mismatch.
    pub corpus_digest: u64,
    /// Epoch history recorded so far.
    pub history: Vec<EpochStats>,
}

/// Trains a flow on a password corpus with the paper's NLL objective.
///
/// The model's parameters are updated in place; the best-epoch weight
/// snapshot is restored at the end of training (mirroring the paper's
/// "we pick the best performing epoch"). This is the one-call wrapper over
/// [`Trainer`]; use the builder for checkpointing and resume.
///
/// # Errors
///
/// * [`FlowError::InvalidConfig`](crate::FlowError::InvalidConfig) if the
///   training configuration is invalid.
/// * [`FlowError::EmptyTrainingSet`](crate::FlowError::EmptyTrainingSet)
///   if no password could be encoded.
/// * [`FlowError::Diverged`](crate::FlowError::Diverged) if the loss
///   becomes non-finite.
pub fn train(
    flow: &PassFlow,
    passwords: &[String],
    config: &TrainConfig,
) -> Result<TrainingReport> {
    Trainer::new(flow, config.clone())?.train(passwords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlowConfig, TrainConfig};
    use passflow_nn::rng as nnrng;
    use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};

    fn tiny_flow(seed: u64) -> PassFlow {
        let mut rng = nnrng::seeded(seed);
        PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
    }

    fn tiny_corpus(n: usize) -> Vec<String> {
        SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(n))
            .generate(31)
            .into_passwords()
    }

    #[test]
    fn training_reduces_nll() {
        let flow = tiny_flow(1);
        let passwords = tiny_corpus(600);
        let held_out = flow.encode_batch(&tiny_corpus(200)).unwrap();
        let before = flow.nll(&held_out);
        let report = train(
            &flow,
            &passwords,
            &TrainConfig::tiny().with_epochs(5).with_batch_size(128),
        )
        .unwrap();
        let after = flow.nll(&held_out);
        assert!(
            after < before,
            "expected NLL to drop: before {before}, after {after}"
        );
        assert_eq!(report.epochs.len(), 5);
        let final_nll = report.final_nll().unwrap();
        assert!(final_nll.is_finite());
        assert!(report.best_nll().unwrap() <= final_nll + 1e-6);
        assert!(report.num_examples > 0);
        assert!(!report.stopped_early);
    }

    #[test]
    fn training_loss_trajectory_is_decreasing_overall() {
        let flow = tiny_flow(2);
        let passwords = tiny_corpus(500);
        let report = train(
            &flow,
            &passwords,
            &TrainConfig::tiny().with_epochs(6).with_batch_size(128),
        )
        .unwrap();
        let first = report.epochs.first().unwrap().train_nll;
        let last = report.epochs.last().unwrap().train_nll;
        assert!(last < first, "first {first}, last {last}");
    }

    #[test]
    fn best_epoch_weights_are_restored() {
        let flow = tiny_flow(3);
        let passwords = tiny_corpus(400);
        let report = train(
            &flow,
            &passwords,
            &TrainConfig::tiny().with_epochs(4).with_batch_size(128),
        )
        .unwrap();
        // The training NLL measured after restore must be close to the best
        // epoch's NLL (not exactly equal: the recorded value is a running
        // batch average with fresh dequantization noise).
        let data = flow.encode_batch(&passwords).unwrap();
        let restored_nll = flow.nll(&data);
        let best = report.best_nll().unwrap();
        assert!(
            (restored_nll - best).abs() < 1.5,
            "restored {restored_nll}, best {best}"
        );
    }

    #[test]
    fn invalid_config_and_empty_corpus_are_rejected() {
        let flow = tiny_flow(4);
        let passwords = tiny_corpus(50);
        assert!(matches!(
            train(&flow, &passwords, &TrainConfig::tiny().with_epochs(0)),
            Err(crate::FlowError::InvalidConfig(_))
        ));
        assert!(matches!(
            train(&flow, &[], &TrainConfig::tiny()),
            Err(crate::FlowError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let passwords = tiny_corpus(300);
        let run = |seed| {
            let flow = tiny_flow(7);
            let report = train(
                &flow,
                &passwords,
                &TrainConfig::tiny()
                    .with_epochs(2)
                    .with_batch_size(128)
                    .with_seed(seed),
            )
            .unwrap();
            report.final_nll().unwrap()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn validation_split_is_monitored_and_reported() {
        let flow = tiny_flow(9);
        let passwords = tiny_corpus(500);
        let report = train(
            &flow,
            &passwords,
            &TrainConfig::tiny()
                .with_epochs(3)
                .with_batch_size(128)
                .with_validation_fraction(0.2),
        )
        .unwrap();
        assert!(report.num_validation > 0);
        assert!(report.num_examples + report.num_validation >= 450);
        for e in &report.epochs {
            let v = e.val_nll.expect("validation NLL recorded");
            assert!(v.is_finite());
            assert_eq!(e.monitored_nll(), v);
        }
        assert!(report.best_val_nll().is_some());
    }

    #[test]
    fn schedules_change_the_recorded_learning_rate() {
        let flow = tiny_flow(11);
        let passwords = tiny_corpus(300);
        let report = train(
            &flow,
            &passwords,
            &TrainConfig::tiny()
                .with_epochs(3)
                .with_batch_size(128)
                .with_schedule(Schedule::Step {
                    every: 2,
                    gamma: 0.5,
                }),
        )
        .unwrap();
        let first = report.epochs.first().unwrap().learning_rate;
        let last = report.epochs.last().unwrap().learning_rate;
        assert!(
            last < first,
            "expected decayed learning rate: {first} -> {last}"
        );
    }

    #[test]
    fn empty_report_has_no_nll() {
        let report = TrainingReport {
            epochs: Vec::new(),
            num_examples: 0,
            num_validation: 0,
            best_epoch: 0,
            stopped_early: false,
        };
        assert_eq!(report.final_nll(), None);
        assert_eq!(report.best_nll(), None);
        assert_eq!(report.best_val_nll(), None);
    }

    #[test]
    fn gradient_accumulation_preserves_learning() {
        let flow = tiny_flow(13);
        let passwords = tiny_corpus(400);
        let report = train(
            &flow,
            &passwords,
            &TrainConfig::tiny()
                .with_epochs(4)
                .with_batch_size(64)
                .with_accum_steps(2),
        )
        .unwrap();
        let first = report.epochs.first().unwrap().train_nll;
        let last = report.epochs.last().unwrap().train_nll;
        assert!(last < first, "first {first}, last {last}");
    }
}
