//! Optimizers.
//!
//! PassFlow is trained with Adam (learning rate 0.001, the paper's Section
//! IV-D); [`Sgd`] is provided for ablations and the WGAN baseline's critic.

use std::collections::HashMap;

use crate::autograd::Parameter;
use crate::error::{NnError, Result};
use crate::tensor::Tensor;

/// A first-order optimizer over a set of [`Parameter`]s.
///
/// Optimizers are stateful (momentum/Adam moments are keyed by parameter
/// identity), so reuse the same optimizer instance across steps.
pub trait Optimizer {
    /// Applies one update using the gradients currently accumulated in the
    /// parameters, then clears those gradients.
    fn step(&mut self, parameters: &[Parameter]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Changes the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Per-parameter optimizer state (two tensors per parameter) with O(1)
/// lookup by parameter identity.
///
/// The previous implementation scanned a `Vec` with `ptr_eq` on every
/// access, which made each optimizer step O(params²) pointer comparisons; a
/// flow-scale model has hundreds of parameter tensors and takes thousands of
/// steps, so the scan was measurable. The map is keyed by
/// [`Parameter::key`]; the entry retains a clone of the parameter, keeping
/// the key valid for the optimizer's lifetime.
#[derive(Debug, Default)]
struct StateMap {
    entries: Vec<(Parameter, Tensor, Tensor)>,
    index: HashMap<usize, usize>,
}

impl StateMap {
    /// Index of `p`'s state, inserting zero-initialized tensors of the given
    /// shape on first sight.
    fn index_or_insert(&mut self, p: &Parameter, rows: usize, cols: usize) -> usize {
        match self.index.entry(p.key()) {
            std::collections::hash_map::Entry::Occupied(slot) => *slot.get(),
            std::collections::hash_map::Entry::Vacant(slot) => {
                let i = self.entries.len();
                slot.insert(i);
                let zero = Tensor::zeros(rows, cols);
                self.entries.push((p.clone(), zero.clone(), zero));
                i
            }
        }
    }

    /// The state tensors for `p`, if present.
    fn get(&self, p: &Parameter) -> Option<(&Tensor, &Tensor)> {
        self.index
            .get(&p.key())
            .map(|&i| (&self.entries[i].1, &self.entries[i].2))
    }

    /// Replaces the state for `p` (inserting if absent).
    fn put(&mut self, p: &Parameter, first: Tensor, second: Tensor) {
        let i = self.index_or_insert(p, first.rows(), first.cols());
        self.entries[i].1 = first;
        self.entries[i].2 = second;
    }
}

// ---------------------------------------------------------------------------
// SGD
// ---------------------------------------------------------------------------

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    /// Per-parameter velocity (stored in the first state slot).
    velocity: StateMap,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Sgd {
            lr,
            momentum,
            velocity: StateMap::default(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, parameters: &[Parameter]) {
        for p in parameters {
            let grad = p.grad();
            if self.momentum > 0.0 {
                let idx = self.velocity.index_or_insert(p, grad.rows(), grad.cols());
                let v = self.velocity.entries[idx].1.scale(self.momentum).add(&grad);
                self.velocity.entries[idx].1 = v.clone();
                p.update_value(|value, _| value.sub(&v.scale(self.lr)));
            } else {
                p.update_value(|value, g| value.sub(&g.scale(self.lr)));
            }
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

// ---------------------------------------------------------------------------
// Adam
// ---------------------------------------------------------------------------

/// A snapshot of an [`Adam`] optimizer's state, aligned to a parameter
/// slice.
///
/// `moments[i]` holds the `(m, v)` moment estimates for the `i`-th parameter
/// of the slice the state was exported against. Checkpoints serialize this
/// snapshot so a resumed training run continues with bit-identical optimizer
/// dynamics (Adam's update depends on the running moments and the bias
///-correction step count, not just the weights).
#[derive(Clone, Debug, PartialEq)]
pub struct AdamState {
    /// Number of optimization steps taken when the state was exported.
    pub step_count: u64,
    /// Per-parameter `(first, second)` moment estimates, in parameter-slice
    /// order. Parameters never stepped yet export zero moments.
    pub moments: Vec<(Tensor, Tensor)>,
}

/// The Adam optimizer (Kingma & Ba, 2015), the paper's training optimizer.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step_count: u64,
    /// Per-parameter first (m) and second (v) moment estimates.
    moments: StateMap,
    /// Optional gradient-clipping threshold (global L2 norm per parameter).
    clip_norm: Option<f32>,
}

impl Adam {
    /// Creates Adam with the standard hyper-parameters
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Creates Adam with explicit momentum coefficients.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            step_count: 0,
            moments: StateMap::default(),
            clip_norm: None,
        }
    }

    /// Enables per-parameter gradient clipping by L2 norm.
    ///
    /// Flow training occasionally produces spiky gradients when the
    /// log-determinant term grows; clipping keeps Adam's moment estimates
    /// sane. Returns `self` for builder-style chaining.
    #[must_use]
    pub fn with_clip_norm(mut self, max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "clip norm must be positive");
        self.clip_norm = Some(max_norm);
        self
    }

    /// Number of optimization steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step_count
    }

    /// Exports the optimizer state aligned to `parameters`.
    ///
    /// Parameters this optimizer has not stepped yet export zero moments, so
    /// the snapshot is always complete and a fresh optimizer loading it
    /// behaves exactly like this one.
    pub fn export_state(&self, parameters: &[Parameter]) -> AdamState {
        let moments = parameters
            .iter()
            .map(|p| match self.moments.get(p) {
                Some((m, v)) => (m.clone(), v.clone()),
                None => {
                    let (r, c) = {
                        let value = p.value();
                        value.shape()
                    };
                    (Tensor::zeros(r, c), Tensor::zeros(r, c))
                }
            })
            .collect();
        AdamState {
            step_count: self.step_count,
            moments,
        }
    }

    /// Restores a state snapshot exported by
    /// [`export_state`](Self::export_state) against the same parameter
    /// order. Existing state for those parameters is replaced.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateMismatch`] if the snapshot holds a different
    /// number of moment pairs than `parameters`, or
    /// [`NnError::ShapeMismatch`] if a moment tensor does not match its
    /// parameter's shape.
    pub fn load_state(&mut self, parameters: &[Parameter], state: &AdamState) -> Result<()> {
        if parameters.len() != state.moments.len() {
            return Err(NnError::StateMismatch {
                expected: parameters.len(),
                got: state.moments.len(),
            });
        }
        for (p, (m, v)) in parameters.iter().zip(state.moments.iter()) {
            let shape = p.value().shape();
            if m.shape() != shape || v.shape() != shape {
                return Err(NnError::ShapeMismatch {
                    op: "adam moment load",
                    lhs: shape,
                    rhs: m.shape(),
                });
            }
        }
        self.step_count = state.step_count;
        for (p, (m, v)) in parameters.iter().zip(state.moments.iter()) {
            self.moments.put(p, m.clone(), v.clone());
        }
        Ok(())
    }
}

impl Optimizer for Adam {
    fn step(&mut self, parameters: &[Parameter]) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);

        for p in parameters {
            let mut grad = p.grad();
            if let Some(max_norm) = self.clip_norm {
                let norm = grad.norm();
                if norm > max_norm {
                    grad = grad.scale(max_norm / norm);
                }
            }
            let idx = self.moments.index_or_insert(p, grad.rows(), grad.cols());
            let m = self.moments.entries[idx]
                .1
                .scale(self.beta1)
                .add(&grad.scale(1.0 - self.beta1));
            let v = self.moments.entries[idx]
                .2
                .scale(self.beta2)
                .add(&grad.square().scale(1.0 - self.beta2));
            self.moments.entries[idx].1 = m.clone();
            self.moments.entries[idx].2 = v.clone();

            let m_hat = m.scale(1.0 / bias1);
            let v_hat = v.scale(1.0 / bias2);
            let denom = v_hat.sqrt().add_scalar(self.eps);
            let update = m_hat.div(&denom).scale(self.lr);
            p.update_value(|value, _| value.sub(&update));
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::Tape;
    use crate::layers::{Linear, Module};
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    /// Minimizes f(w) = ||w - target||² from a fixed start with an optimizer
    /// and returns the final distance to the target.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let target = Tensor::row(&[1.0, -2.0, 0.5]);
        let w = Parameter::new(Tensor::zeros(1, 3), "w");
        for _ in 0..steps {
            let tape = Tape::new();
            let wv = tape.param(&w);
            let t = tape.constant(target.clone());
            wv.sub(&t).square().sum().backward();
            opt.step(std::slice::from_ref(&w));
        }
        w.value().squared_distance(&target)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let dist = run_quadratic(&mut opt, 100);
        assert!(dist < 1e-6, "distance was {dist}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let dist = run_quadratic(&mut opt, 200);
        assert!(dist < 1e-4, "distance was {dist}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let dist = run_quadratic(&mut opt, 300);
        assert!(dist < 1e-3, "distance was {dist}");
        assert_eq!(opt.steps_taken(), 300);
    }

    #[test]
    fn adam_trains_a_linear_regression() {
        let mut r = rng();
        // y = x @ true_w
        let true_w = Tensor::randn(4, 1, &mut r);
        let x = Tensor::randn(64, 4, &mut r);
        let y = x.matmul(&true_w);

        let layer = Linear::new(4, 1, &mut r);
        let mut opt = Adam::new(0.05);
        let mut last_loss = f32::INFINITY;
        for _ in 0..200 {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let yv = tape.constant(y.clone());
            let pred = layer.forward(&tape, &xv);
            let loss = pred.sub(&yv).square().mean();
            last_loss = loss.value().get(0, 0);
            loss.backward();
            opt.step(&layer.parameters());
        }
        assert!(last_loss < 1e-3, "final loss was {last_loss}");
    }

    #[test]
    fn step_clears_gradients() {
        let p = Parameter::new(Tensor::row(&[1.0]), "p");
        p.accumulate_grad(&Tensor::row(&[5.0]));
        let mut opt = Sgd::new(0.1);
        opt.step(std::slice::from_ref(&p));
        assert_eq!(p.grad().sum(), 0.0);
    }

    #[test]
    fn clip_norm_limits_update_magnitude() {
        let p = Parameter::new(Tensor::row(&[0.0, 0.0]), "p");
        p.accumulate_grad(&Tensor::row(&[300.0, 400.0])); // norm 500
        let mut clipped = Adam::new(1.0).with_clip_norm(1.0);
        clipped.step(std::slice::from_ref(&p));
        // First Adam step size is bounded by lr regardless, but the direction
        // must match the clipped gradient; verify values stay finite and small.
        assert!(p.value().abs().max() <= 1.0 + 1e-5);
        assert!(p.value().is_finite());
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);

        let mut sgd = Sgd::new(0.2);
        sgd.set_learning_rate(0.3);
        assert_eq!(sgd.learning_rate(), 0.3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_learning_rate_rejected() {
        let _ = Adam::new(0.0);
    }

    #[test]
    fn adam_state_export_load_round_trips_bitwise() {
        // Train two identical parameter sets: one continuously, one through
        // an export/load hand-off at the midpoint. Trajectories must be
        // bit-identical.
        let make_params = || {
            vec![
                Parameter::new(Tensor::row(&[0.2, -0.4, 0.8]), "a"),
                Parameter::new(Tensor::row(&[1.0, 1.0]), "b"),
            ]
        };
        let grads = |step: u64| {
            [
                Tensor::row(&[0.3 + step as f32 * 0.01, -0.2, 0.1]),
                Tensor::row(&[-0.5, 0.25 + step as f32 * 0.02]),
            ]
        };
        let run_steps = |opt: &mut Adam, params: &[Parameter], from: u64, to: u64| {
            for s in from..to {
                for (p, g) in params.iter().zip(grads(s).iter()) {
                    p.accumulate_grad(g);
                }
                opt.step(params);
            }
        };

        let continuous = make_params();
        let mut opt_a = Adam::new(0.05).with_clip_norm(1.0);
        run_steps(&mut opt_a, &continuous, 0, 20);

        let resumed = make_params();
        let mut opt_b = Adam::new(0.05).with_clip_norm(1.0);
        run_steps(&mut opt_b, &resumed, 0, 10);
        let state = opt_b.export_state(&resumed);
        let mut opt_c = Adam::new(0.05).with_clip_norm(1.0);
        opt_c.load_state(&resumed, &state).unwrap();
        assert_eq!(opt_c.steps_taken(), 10);
        run_steps(&mut opt_c, &resumed, 10, 20);

        for (p, q) in continuous.iter().zip(resumed.iter()) {
            let (pv, qv) = (p.value(), q.value());
            for (a, b) in pv.as_slice().iter().zip(qv.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Exported states also agree bitwise after the identical runs.
        assert_eq!(
            opt_a.export_state(&continuous).moments,
            opt_c.export_state(&resumed).moments
        );
    }

    #[test]
    fn adam_export_covers_unstepped_parameters_with_zeros() {
        let p = Parameter::new(Tensor::zeros(2, 3), "fresh");
        let opt = Adam::new(0.1);
        let state = opt.export_state(std::slice::from_ref(&p));
        assert_eq!(state.step_count, 0);
        assert_eq!(state.moments.len(), 1);
        assert_eq!(state.moments[0].0.shape(), (2, 3));
        assert_eq!(state.moments[0].0.sum(), 0.0);
    }

    #[test]
    fn adam_load_state_validates_alignment() {
        let p = Parameter::new(Tensor::row(&[1.0]), "p");
        let mut opt = Adam::new(0.1);
        let empty = AdamState {
            step_count: 3,
            moments: Vec::new(),
        };
        assert!(matches!(
            opt.load_state(std::slice::from_ref(&p), &empty),
            Err(crate::error::NnError::StateMismatch {
                expected: 1,
                got: 0
            })
        ));
        let wrong_shape = AdamState {
            step_count: 3,
            moments: vec![(Tensor::zeros(2, 2), Tensor::zeros(2, 2))],
        };
        assert!(matches!(
            opt.load_state(std::slice::from_ref(&p), &wrong_shape),
            Err(crate::error::NnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn adam_state_tracks_parameters_independently() {
        let a = Parameter::new(Tensor::row(&[0.0]), "a");
        let b = Parameter::new(Tensor::row(&[0.0]), "b");
        let mut opt = Adam::new(0.1);
        a.accumulate_grad(&Tensor::row(&[1.0]));
        b.accumulate_grad(&Tensor::row(&[-1.0]));
        opt.step(&[a.clone(), b.clone()]);
        assert!(a.value().get(0, 0) < 0.0);
        assert!(b.value().get(0, 0) > 0.0);
    }
}
