//! Lock-free serving metrics with a text exposition endpoint.
//!
//! Counters and histograms are plain relaxed atomics — recording a request
//! never takes a lock, so the hot path cost is a handful of fetch-adds.
//! `GET /metrics` renders a Prometheus-style text exposition: request
//! counts by endpoint and status class, the micro-batch size histogram, and
//! request latency with p50/p99 estimated from a log-spaced histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bucket bounds (inclusive) for the batch-size histogram.
const BATCH_BUCKETS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Upper bucket bounds (inclusive, microseconds) for the latency histogram.
const LATENCY_BUCKETS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
    10_000_000,
];

/// Endpoints tracked individually; everything else lands in `other`.
const ENDPOINTS: [&str; 8] = [
    "score", "logprob", "screen", "range", "models", "healthz", "metrics", "other",
];

/// Aggregated serving metrics. One instance is shared (behind an `Arc`) by
/// every connection handler and the batcher thread.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `requests[endpoint][status_class]` — status classes 2xx/4xx/5xx.
    requests: [[AtomicU64; 3]; 8],
    /// Batch-size histogram buckets plus overflow, and sum/count for means.
    batch_buckets: [AtomicU64; 10],
    batch_sum: AtomicU64,
    batch_ticks: AtomicU64,
    /// Latency histogram buckets plus overflow, and sum/count.
    latency_buckets: [AtomicU64; 15],
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
    /// Digest-store read failures observed by handlers (after retries).
    store_faults: AtomicU64,
    /// Jobs dropped because their deadline expired before scoring.
    deadline_expired: AtomicU64,
    /// Requests shed at enqueue time (batcher queue full).
    shed: AtomicU64,
    /// Digest-store breaker state: 0 closed, 1 open, 2 half-open.
    breaker_state: AtomicU64,
    /// Breaker state transitions since startup.
    breaker_transitions: AtomicU64,
}

fn endpoint_index(endpoint: &str) -> usize {
    ENDPOINTS
        .iter()
        .position(|e| *e == endpoint)
        .unwrap_or(ENDPOINTS.len() - 1)
}

impl Metrics {
    /// Creates a zeroed metrics sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request for `endpoint` with `status`.
    pub fn record_request(&self, endpoint: &str, status: u16) {
        let class = match status {
            200..=299 => 0,
            400..=499 => 1,
            _ => 2,
        };
        self.requests[endpoint_index(endpoint)][class].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batcher tick that scored `size` passwords.
    pub fn record_batch(&self, size: usize) {
        let size = size as u64;
        let idx = BATCH_BUCKETS
            .iter()
            .position(|&b| size <= b)
            .unwrap_or(BATCH_BUCKETS.len());
        self.batch_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.batch_sum.fetch_add(size, Ordering::Relaxed);
        self.batch_ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's total latency (read → response flushed).
    pub fn record_latency(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one digest-store read failure (after the store's own
    /// bounded retries — these are the failures the breaker also sees).
    pub fn record_store_fault(&self) {
        self.store_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one job dropped because its deadline expired (a 504).
    pub fn record_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request shed at enqueue time (queue-full 503).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the breaker's current state and transition count (called
    /// by handlers after each breaker interaction — a gauge, not a counter).
    pub fn set_breaker(&self, state: u64, transitions: u64) {
        self.breaker_state.store(state, Ordering::Relaxed);
        self.breaker_transitions
            .store(transitions, Ordering::Relaxed);
    }

    /// Deadline-expired jobs so far (test hook).
    pub fn deadline_expired_total(&self) -> u64 {
        self.deadline_expired.load(Ordering::Relaxed)
    }

    /// Shed requests so far (test hook).
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Store faults so far (test hook).
    pub fn store_faults_total(&self) -> u64 {
        self.store_faults.load(Ordering::Relaxed)
    }

    /// Total requests recorded across all endpoints and statuses.
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .flatten()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Latency quantile in microseconds, estimated from the histogram
    /// (upper bound of the bucket containing the quantile).
    fn latency_quantile_us(&self, q: f64) -> u64 {
        let total = self.latency_count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.latency_buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return LATENCY_BUCKETS_US.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Renders the text exposition served at `GET /metrics`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# TYPE passflow_requests_total counter\n");
        for (ei, endpoint) in ENDPOINTS.iter().enumerate() {
            for (ci, class) in ["2xx", "4xx", "5xx"].iter().enumerate() {
                let n = self.requests[ei][ci].load(Ordering::Relaxed);
                if n > 0 || *endpoint != "other" {
                    let _ = writeln!(
                        out,
                        "passflow_requests_total{{endpoint=\"{endpoint}\",status=\"{class}\"}} {n}"
                    );
                }
            }
        }

        out.push_str("# TYPE passflow_batch_size histogram\n");
        let mut cumulative = 0u64;
        for (i, bound) in BATCH_BUCKETS.iter().enumerate() {
            cumulative += self.batch_buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "passflow_batch_size_bucket{{le=\"{bound}\"}} {cumulative}"
            );
        }
        cumulative += self.batch_buckets[BATCH_BUCKETS.len()].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "passflow_batch_size_bucket{{le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(
            out,
            "passflow_batch_size_sum {}",
            self.batch_sum.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "passflow_batch_size_count {}",
            self.batch_ticks.load(Ordering::Relaxed)
        );

        out.push_str("# TYPE passflow_request_latency_seconds summary\n");
        for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
            let _ = writeln!(
                out,
                "passflow_request_latency_seconds{{quantile=\"{label}\"}} {:.6}",
                self.latency_quantile_us(q) as f64 / 1e6
            );
        }
        let _ = writeln!(
            out,
            "passflow_request_latency_seconds_sum {:.6}",
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "passflow_request_latency_seconds_count {}",
            self.latency_count.load(Ordering::Relaxed)
        );

        out.push_str("# TYPE passflow_store_faults_total counter\n");
        let _ = writeln!(
            out,
            "passflow_store_faults_total {}",
            self.store_faults.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE passflow_deadline_expired_total counter\n");
        let _ = writeln!(
            out,
            "passflow_deadline_expired_total {}",
            self.deadline_expired.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE passflow_shed_total counter\n");
        let _ = writeln!(
            out,
            "passflow_shed_total {}",
            self.shed.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE passflow_breaker_state gauge\n");
        let _ = writeln!(
            out,
            "passflow_breaker_state {}",
            self.breaker_state.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE passflow_breaker_transitions_total counter\n");
        let _ = writeln!(
            out,
            "passflow_breaker_transitions_total {}",
            self.breaker_transitions.load(Ordering::Relaxed)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new();
        m.record_request("score", 200);
        m.record_request("score", 200);
        m.record_request("score", 400);
        m.record_request("metrics", 200);
        m.record_request("nonsense", 500);
        assert_eq!(m.total_requests(), 5);
        let text = m.render();
        assert!(text.contains("passflow_requests_total{endpoint=\"score\",status=\"2xx\"} 2"));
        assert!(text.contains("passflow_requests_total{endpoint=\"score\",status=\"4xx\"} 1"));
        assert!(text.contains("passflow_requests_total{endpoint=\"other\",status=\"5xx\"} 1"));
    }

    #[test]
    fn batch_histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        for size in [1, 1, 3, 64, 500] {
            m.record_batch(size);
        }
        let text = m.render();
        assert!(text.contains("passflow_batch_size_bucket{le=\"1\"} 2"));
        assert!(text.contains("passflow_batch_size_bucket{le=\"4\"} 3"));
        assert!(text.contains("passflow_batch_size_bucket{le=\"64\"} 4"));
        assert!(text.contains("passflow_batch_size_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("passflow_batch_size_sum 569"));
        assert!(text.contains("passflow_batch_size_count 5"));
    }

    #[test]
    fn latency_quantiles_track_the_distribution() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record_latency(Duration::from_micros(80));
        }
        m.record_latency(Duration::from_millis(40));
        // p50 lands in the ≤100µs bucket, p99 well below the 40ms outlier…
        assert_eq!(m.latency_quantile_us(0.5), 100);
        assert_eq!(m.latency_quantile_us(0.99), 100);
        // …and p999 would catch it (bucket upper bound 50ms).
        assert_eq!(m.latency_quantile_us(0.999), 50_000);
        let text = m.render();
        assert!(text.contains("passflow_request_latency_seconds{quantile=\"0.5\"} 0.000100"));
        assert!(text.contains("passflow_request_latency_seconds_count 100"));
    }

    #[test]
    fn robustness_counters_render() {
        let m = Metrics::new();
        m.record_store_fault();
        m.record_deadline_expired();
        m.record_deadline_expired();
        m.record_shed();
        m.set_breaker(1, 3);
        let text = m.render();
        assert!(text.contains("passflow_store_faults_total 1"));
        assert!(text.contains("passflow_deadline_expired_total 2"));
        assert!(text.contains("passflow_shed_total 1"));
        assert!(text.contains("passflow_breaker_state 1"));
        assert!(text.contains("passflow_breaker_transitions_total 3"));
        assert_eq!(m.deadline_expired_total(), 2);
        assert_eq!(m.shed_total(), 1);
        assert_eq!(m.store_faults_total(), 1);
    }
}
