/root/repo/target/debug/deps/guessing-1af2bcb69af0016d.d: crates/bench/benches/guessing.rs

/root/repo/target/debug/deps/guessing-1af2bcb69af0016d: crates/bench/benches/guessing.rs

crates/bench/benches/guessing.rs:
