//! K-way merge of sorted record streams and whole artifacts.
//!
//! Shard artifacts built by separate attack runs (or machines) union into
//! one store with [`merge_artifacts`]: digests are deduplicated and their
//! breach counts summed, following the balanced-partition discipline of
//! the external sort — every input stream is already sorted, so the merge
//! is a single streaming pass with one heap entry per input and bounded
//! memory. Because the output is a pure function of the merged record
//! stream, merging is associative *and* commutative at the byte level:
//! `merge(a, b, c, d)`, `merge(merge(a, b), merge(c, d))` and any input
//! permutation produce identical files (asserted by `tests/store.rs`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::Path;

use crate::format::{
    format_err, ArtifactWriter, DigestStats, DigestStore, RawDigest, RecordCursor, Result,
};

/// A sorted, deduplicated record stream (runs, buffers, open artifacts)
/// over keys of type `K` — fixed-width digests for `PFDIGEST`, raw guess
/// bytes for `PFGUESS`.
pub(crate) trait KeyedSource<K> {
    /// The next record in ascending key order, or `None` when drained.
    fn next_record(&mut self) -> Result<Option<(K, u64)>>;
}

impl KeyedSource<RawDigest> for RecordCursor<'_> {
    fn next_record(&mut self) -> Result<Option<(RawDigest, u64)>> {
        RecordCursor::next_record(self)
    }
}

/// Streams the union of `sources` into `emit`: strictly ascending keys,
/// equal keys collapsed with saturating count sums. The shared engine
/// behind both artifact formats' builders and N-way merges.
pub(crate) fn merge_keyed<K: Ord>(
    mut sources: Vec<Box<dyn KeyedSource<K> + '_>>,
    mut emit: impl FnMut(K, u64) -> Result<()>,
) -> Result<()> {
    // Heap of (next key, source index); counts live in `heads`.
    let mut heads: Vec<Option<u64>> = vec![None; sources.len()];
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::new();
    for (i, source) in sources.iter_mut().enumerate() {
        if let Some((key, count)) = source.next_record()? {
            heads[i] = Some(count);
            heap.push(Reverse((key, i)));
        }
    }

    while let Some(Reverse((key, i))) = heap.pop() {
        let mut count = heads[i].take().expect("queued source has a head");
        if let Some((next, c)) = sources[i].next_record()? {
            heads[i] = Some(c);
            heap.push(Reverse((next, i)));
        }
        // Absorb every other source currently sitting on the same key.
        while let Some(Reverse((k, j))) = heap.peek() {
            if *k != key {
                break;
            }
            let j = *j;
            heap.pop();
            count = count.saturating_add(heads[j].take().expect("queued source has a head"));
            if let Some((next, c)) = sources[j].next_record()? {
                heads[j] = Some(c);
                heap.push(Reverse((next, j)));
            }
        }
        emit(key, count)?;
    }
    Ok(())
}

/// Streams the union of digest `sources` into `writer`.
pub(crate) fn merge_sources(
    sources: Vec<Box<dyn KeyedSource<RawDigest> + '_>>,
    writer: &mut ArtifactWriter,
) -> Result<()> {
    merge_keyed(sources, |digest, count| writer.push(&digest, count))
}

/// Unions N shard artifacts into one at `out`.
///
/// All inputs must share the same [`DigestConfig`](crate::DigestConfig)
/// (digest width, counts flag, block size) — that is what guarantees the
/// merged artifact is byte-identical to a one-pass build over the union.
///
/// # Errors
///
/// No inputs, mismatched configs, unreadable inputs, or write failures.
pub fn merge_artifacts<P: AsRef<Path>>(inputs: &[P], out: impl AsRef<Path>) -> Result<DigestStats> {
    if inputs.is_empty() {
        return format_err("merge needs at least one input artifact");
    }
    let stores: Vec<DigestStore> = inputs
        .iter()
        .map(DigestStore::open)
        .collect::<Result<_>>()?;
    let config = stores[0].config();
    for store in &stores[1..] {
        if store.config() != config {
            return format_err(format!(
                "mismatched shard configs: {:?} vs {:?} ({})",
                config,
                store.config(),
                store.path().display()
            ));
        }
    }
    let sources: Vec<Box<dyn KeyedSource<RawDigest> + '_>> = stores
        .iter()
        .map(|s| Box::new(s.records()) as Box<dyn KeyedSource<RawDigest> + '_>)
        .collect();
    let mut writer = ArtifactWriter::create(out, config)?;
    merge_sources(sources, &mut writer)?;
    writer.finish()
}
