//! The common interface all baseline guessers expose.

use rand::RngCore;

/// A trained password guesser that can generate candidate passwords.
///
/// The trait is object-safe so the evaluation harness can hold a mixed
/// collection of baselines (`Vec<Box<dyn PasswordGuesser>>`) and run the
/// same guessing protocol over each of them.
pub trait PasswordGuesser {
    /// Human-readable name used as the row label in tables.
    fn name(&self) -> &str;

    /// Generates `n` password guesses.
    ///
    /// Guesses may repeat; deduplication (and the resulting unique counts)
    /// is the responsibility of the evaluation protocol, exactly as in the
    /// paper's Tables II and III.
    fn generate(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;

    impl PasswordGuesser for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn generate(&self, n: usize, _rng: &mut dyn RngCore) -> Vec<String> {
            vec!["123456".to_string(); n]
        }
    }

    #[test]
    fn trait_is_object_safe_and_usable_through_a_box() {
        let guessers: Vec<Box<dyn PasswordGuesser>> = vec![Box::new(Fixed)];
        let mut rng = passflow_nn::rng::seeded(1);
        let out = guessers[0].generate(3, &mut rng);
        assert_eq!(out.len(), 3);
        assert_eq!(guessers[0].name(), "fixed");
    }
}
