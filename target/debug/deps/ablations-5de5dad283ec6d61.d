/root/repo/target/debug/deps/ablations-5de5dad283ec6d61.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-5de5dad283ec6d61.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
