/root/repo/target/release/deps/table6-852426858efa6b86.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-852426858efa6b86: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
