/root/repo/target/debug/deps/baselines_integration-61ce6eba971979bc.d: tests/baselines_integration.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines_integration-61ce6eba971979bc.rmeta: tests/baselines_integration.rs Cargo.toml

tests/baselines_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
