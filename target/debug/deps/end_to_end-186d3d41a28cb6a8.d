/root/repo/target/debug/deps/end_to_end-186d3d41a28cb6a8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-186d3d41a28cb6a8: tests/end_to_end.rs

tests/end_to_end.rs:
