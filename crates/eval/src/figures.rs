//! Drivers regenerating the paper's figures (as data tables/CSV series).
//!
//! The paper's figures are plots; these drivers produce the underlying data
//! series so the same curves can be regenerated with any plotting tool (the
//! bench binaries write both the rendered table and a CSV file).

use passflow_core::{interpolate, Attack, DynamicParams, GuessingStrategy, PassFlow, Result};
use passflow_nn::rng as nnrng;
use passflow_nn::Tensor;

use crate::projection::{tsne, TsneConfig};
use crate::report::{format_budget, format_percent, Table};
use crate::scale::Workbench;
use crate::tables::flow_attack;

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

/// Figure 2: a 2-D projection (t-SNE) of latent points sampled in the
/// neighbourhood of pivot passwords, over a background of prior samples.
///
/// Each output row is a projected point: `x`, `y`, `group` (either
/// `background` or the pivot password) and the decoded password.
///
/// # Errors
///
/// Returns an error if a pivot cannot be encoded.
pub fn figure2(
    wb: &Workbench,
    pivots: &[&str],
    neighbours_per_pivot: usize,
    background_points: usize,
) -> Result<Table> {
    let mut rng = nnrng::derived(wb.scale.seed, 400);
    let mut latents: Vec<Vec<f32>> = Vec::new();
    let mut groups: Vec<String> = Vec::new();

    // Background: latent images of real test passwords (the "latent space
    // learned by the model" backdrop of the figure).
    for password in wb.split.test_unique.iter().take(background_points) {
        if let Some(z) = wb.flow.latent_of(password) {
            latents.push(z);
            groups.push("background".to_string());
        }
    }
    // Neighbourhoods around each pivot.
    for pivot in pivots {
        let center = wb
            .flow
            .latent_of(pivot)
            .ok_or_else(|| passflow_core::FlowError::UnencodablePassword(pivot.to_string()))?;
        for _ in 0..neighbours_per_pivot {
            let z: Vec<f32> = center
                .iter()
                .map(|&c| c + 0.08 * nnrng::standard_normal(&mut rng))
                .collect();
            latents.push(z);
            groups.push((*pivot).to_string());
        }
    }

    let data = Tensor::from_rows(&latents);
    let embedding = tsne(
        &data,
        &TsneConfig {
            perplexity: 15.0,
            iterations: 250,
            learning_rate: 40.0,
            seed: wb.scale.seed,
        },
    );
    let decoded = wb.flow.decode_batch(&wb.flow.inverse(&data));

    let mut table = Table::new(
        "Figure 2: t-SNE projection of latent neighbourhoods",
        vec![
            "x".to_string(),
            "y".to_string(),
            "group".to_string(),
            "password".to_string(),
        ],
    );
    for i in 0..embedding.rows() {
        table.push_row(vec![
            format!("{:.4}", embedding.get(i, 0)),
            format!("{:.4}", embedding.get(i, 1)),
            groups[i].clone(),
            decoded[i].clone(),
        ]);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------------

/// Figure 3: latent interpolation between two passwords, mapped back to the
/// password space at each step.
///
/// # Errors
///
/// Returns an error if either endpoint cannot be encoded.
pub fn figure3(wb: &Workbench, start: &str, target: &str, steps: usize) -> Result<Table> {
    let path = interpolate(&wb.flow, start, target, steps)?;
    let mut table = Table::new(
        format!("Figure 3: interpolation from {start:?} to {target:?}"),
        vec![
            "step".to_string(),
            "password".to_string(),
            "log-prob".to_string(),
        ],
    );
    for point in path {
        let log_prob = wb
            .flow
            .log_prob_password(&point.password)
            .unwrap_or(f32::NAN);
        table.push_row(vec![
            point.step.to_string(),
            point.password,
            format!("{log_prob:.2}"),
        ]);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------------

/// Figure 4: marginal improvement in matches as the training-set size grows,
/// relative to the smallest training set in `sizes`.
///
/// A fresh flow is trained per size on a prefix of the workbench's training
/// split; all models are evaluated with static sampling at `budget` guesses
/// against the full test set.
///
/// # Errors
///
/// Propagates training errors from the core crate.
pub fn figure4(wb: &Workbench, sizes: &[usize], budget: u64) -> Result<Table> {
    assert!(
        sizes.len() >= 2,
        "figure 4 needs at least a baseline size and one comparison size"
    );
    let targets = wb.test_set();
    let mut matches_per_size: Vec<(usize, u64, f64)> = Vec::new();

    for (i, &size) in sizes.iter().enumerate() {
        let size = size.min(wb.split.train.len());
        let train_slice = &wb.split.train[..size];
        let mut rng = nnrng::derived(wb.scale.seed, 500 + i as u64);
        let flow = PassFlow::new(wb.scale.flow_config.clone(), &mut rng)?;
        passflow_core::train(&flow, train_slice, &wb.scale.train_config)?;
        let outcome = Attack::new(&targets)
            .budget(budget)
            .batch_size(wb.scale.attack_batch)
            .seed(wb.scale.seed ^ 0xF16)
            .shards(wb.scale.attack_shards)
            .nonmatched_samples(0)
            .run(&flow)
            .expect("static sampling needs no latent access");
        let report = outcome.final_report();
        matches_per_size.push((size, report.matched, report.matched_percent));
    }

    let baseline = matches_per_size[0].1;
    let mut table = Table::new(
        "Figure 4: marginal improvement vs training-set size",
        vec![
            "train size".to_string(),
            "matched".to_string(),
            "matched %".to_string(),
            "marginal improvement %".to_string(),
        ],
    );
    for (size, matched, percent) in &matches_per_size {
        let improvement = 100.0 * (*matched as f64 - baseline as f64) / baseline.max(1) as f64;
        table.push_row(vec![
            size.to_string(),
            matched.to_string(),
            format_percent(*percent),
            format!("{improvement:.1}"),
        ]);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

/// Figure 5: matches achieved by Dynamic Sampling with and without the
/// penalization function φ, at each budget of the workbench's scale.
pub fn figure5(wb: &Workbench) -> Table {
    let params = DynamicParams::paper_defaults(wb.scale.max_budget());
    let with_phi = flow_attack(wb, GuessingStrategy::Dynamic(params));
    let without_phi = flow_attack(wb, GuessingStrategy::Dynamic(params.without_penalization()));

    let mut table = Table::new(
        "Figure 5: matches with and without the penalization function phi",
        vec![
            "Guesses".to_string(),
            "without phi (%)".to_string(),
            "with phi (%)".to_string(),
        ],
    );
    for (without, with) in without_phi
        .checkpoints
        .iter()
        .zip(with_phi.checkpoints.iter())
    {
        table.push_row(vec![
            format_budget(with.guesses),
            format_percent(without.matched_percent),
            format_percent(with.matched_percent),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::EvalScale;
    use std::sync::OnceLock;

    fn workbench() -> &'static Workbench {
        static WB: OnceLock<Workbench> = OnceLock::new();
        WB.get_or_init(|| Workbench::prepare(EvalScale::smoke()).unwrap())
    }

    #[test]
    fn figure2_projects_background_and_neighbourhoods() {
        let t = figure2(workbench(), &["jaram", "royal"], 15, 60).unwrap();
        assert!(t.num_rows() >= 60);
        let groups: std::collections::HashSet<&str> =
            t.rows.iter().map(|r| r[2].as_str()).collect();
        assert!(groups.contains("background"));
        assert!(groups.contains("jaram"));
        assert!(groups.contains("royal"));
        // Coordinates parse as finite numbers.
        for row in &t.rows {
            let x: f32 = row[0].parse().unwrap();
            let y: f32 = row[1].parse().unwrap();
            assert!(x.is_finite() && y.is_finite());
        }
    }

    #[test]
    fn figure2_rejects_unencodable_pivot() {
        assert!(figure2(workbench(), &["definitely too long to encode"], 5, 10).is_err());
    }

    #[test]
    fn figure3_path_has_expected_endpoints() {
        let t = figure3(workbench(), "jimmy91", "123456", 6).unwrap();
        assert_eq!(t.num_rows(), 7);
        assert_eq!(t.rows[0][1], "jimmy91");
        assert_eq!(t.rows[6][1], "123456");
        // Log-probabilities are present and finite.
        for row in &t.rows {
            let lp: f32 = row[2].parse().unwrap();
            assert!(lp.is_finite());
        }
    }

    #[test]
    fn figure4_reports_improvement_relative_to_baseline() {
        let wb = workbench();
        let sizes = vec![200, wb.split.train.len()];
        let t = figure4(wb, &sizes, 1_500).unwrap();
        assert_eq!(t.num_rows(), 2);
        // The baseline row reports zero improvement by construction.
        assert_eq!(t.rows[0][3], "0.0");
    }

    #[test]
    fn figure5_reports_both_configurations_per_budget() {
        let t = figure5(workbench());
        assert_eq!(t.num_rows(), workbench().scale.budgets.len());
        for row in &t.rows {
            let without: f64 = row[1].parse().unwrap();
            let with: f64 = row[2].parse().unwrap();
            assert!((0.0..=100.0).contains(&without));
            assert!((0.0..=100.0).contains(&with));
        }
    }
}
