//! Dynamic Sampling with penalization (Section III-B, Algorithm 1, Table I).
//!
//! Static sampling explores the latent space uniformly under the prior.
//! Dynamic Sampling conditions the prior on the set `M` of latent points
//! whose decoded passwords have already matched the target set: once more
//! than `α` matches are known, latent samples are drawn from the Gaussian
//! mixture of Equation 14, `p_z(z | M) = Σ_i φ(z_i) · N(z_i, σ)`.
//!
//! The penalization function φ prevents the sampler from stagnating around
//! the same matches forever: the paper's φ is a step function that drops a
//! component's weight to zero after it has been used `γ` times.

use serde::{Deserialize, Serialize};

use crate::prior::GaussianMixturePrior;

/// The penalization function φ applied to matched latent points.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Penalization {
    /// The paper's step function: weight 1 while the component has been used
    /// fewer than `gamma` times, 0 afterwards.
    Step {
        /// Usage threshold γ.
        gamma: u32,
    },
    /// No penalization (φ ≡ 1) — the "without φ" configuration of Figure 5,
    /// equivalent to the uniform weighting used by Pasquini et al.
    None,
}

impl Penalization {
    /// Evaluates φ for a component that has been used `usage` times.
    pub fn weight(&self, usage: u32) -> f32 {
        match *self {
            Penalization::Step { gamma } => {
                if usage < gamma {
                    1.0
                } else {
                    0.0
                }
            }
            Penalization::None => 1.0,
        }
    }
}

/// Parameters of the Dynamic Sampling algorithm (Table I).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DynamicParams {
    /// Number of matches required before the mixture prior is activated (α).
    pub alpha: usize,
    /// Standard deviation of each mixture component (σ).
    pub sigma: f32,
    /// Penalization function φ (the paper's step function with threshold γ).
    pub penalization: Penalization,
}

impl Default for DynamicParams {
    /// The Table I parameters for the 10⁶-guess budget.
    fn default() -> Self {
        DynamicParams::paper_defaults(1_000_000)
    }
}

impl DynamicParams {
    /// Creates parameters with a step-function penalization.
    pub fn new(alpha: usize, sigma: f32, gamma: u32) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        DynamicParams {
            alpha,
            sigma,
            penalization: Penalization::Step { gamma },
        }
    }

    /// Disables the penalization function (φ ≡ 1), keeping α and σ — the
    /// "without φ" ablation of Figure 5.
    #[must_use]
    pub fn without_penalization(mut self) -> Self {
        self.penalization = Penalization::None;
        self
    }

    /// The parameters the paper reports in Table I for each guess budget:
    ///
    /// | Guesses | α  | σ    | γ  |
    /// |---------|----|------|----|
    /// | 10⁴     | 1  | 0.12 | 2  |
    /// | 10⁵     | 1  | 0.12 | 2  |
    /// | 10⁶     | 5  | 0.12 | 2  |
    /// | 10⁷     | 50 | 0.12 | 10 |
    /// | 10⁸     | 50 | 0.15 | 10 |
    ///
    /// Budgets between rows use the closest (lower) row.
    pub fn paper_defaults(num_guesses: u64) -> Self {
        if num_guesses >= 100_000_000 {
            DynamicParams::new(50, 0.15, 10)
        } else if num_guesses >= 10_000_000 {
            DynamicParams::new(50, 0.12, 10)
        } else if num_guesses >= 1_000_000 {
            DynamicParams::new(5, 0.12, 2)
        } else {
            DynamicParams::new(1, 0.12, 2)
        }
    }
}

/// The evolving set `M` of matched latent points together with the usage
/// dictionary `Mh` of Algorithm 1.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MatchedLatents {
    points: Vec<Vec<f32>>,
    usage: Vec<u32>,
}

impl MatchedLatents {
    /// Creates an empty matched set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of matched latent points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when no matches have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Records the latent point of a newly matched password
    /// (Algorithm 1, lines 7–9).
    pub fn insert(&mut self, latent: Vec<f32>) {
        self.points.push(latent);
        self.usage.push(0);
    }

    /// Usage counts (the `Mh` dictionary).
    pub fn usage_counts(&self) -> &[u32] {
        &self.usage
    }

    /// The matched latent points, in match order.
    pub fn points(&self) -> &[Vec<f32>] {
        &self.points
    }

    /// Rebuilds the set from persisted points and usage counts (attack
    /// checkpoint resume).
    ///
    /// # Panics
    ///
    /// Panics if the two slices disagree in length.
    pub fn from_parts(points: Vec<Vec<f32>>, usage: Vec<u32>) -> Self {
        assert_eq!(
            points.len(),
            usage.len(),
            "points and usage counts must pair up"
        );
        MatchedLatents { points, usage }
    }

    /// Builds the mixture prior of Equation 14 if dynamic sampling should be
    /// active, and advances the usage counter of every component included in
    /// the mixture.
    ///
    /// Returns `None` when the mixture should not (or cannot) be used:
    /// either fewer than `α` matches exist yet, or the penalization has
    /// driven every component's weight to zero — in both cases the caller
    /// falls back to the standard-normal prior.
    pub fn build_prior(&mut self, params: &DynamicParams) -> Option<GaussianMixturePrior> {
        if self.len() <= params.alpha {
            return None;
        }
        let weights: Vec<f32> = self
            .usage
            .iter()
            .map(|&u| params.penalization.weight(u))
            .collect();
        if weights.iter().all(|&w| w == 0.0) {
            return None;
        }
        // Every component with positive weight participates in conditioning
        // this round; record the usage so φ can penalize it later.
        for (usage, weight) in self.usage.iter_mut().zip(weights.iter()) {
            if *weight > 0.0 {
                *usage += 1;
            }
        }
        Some(GaussianMixturePrior::new(
            self.points.clone(),
            params.sigma,
            weights,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::Prior;

    #[test]
    fn paper_defaults_match_table_one() {
        let cases = [
            (10_000u64, 1usize, 0.12f32, 2u32),
            (100_000, 1, 0.12, 2),
            (1_000_000, 5, 0.12, 2),
            (10_000_000, 50, 0.12, 10),
            (100_000_000, 50, 0.15, 10),
        ];
        for (guesses, alpha, sigma, gamma) in cases {
            let p = DynamicParams::paper_defaults(guesses);
            assert_eq!(p.alpha, alpha, "alpha for {guesses}");
            assert!((p.sigma - sigma).abs() < 1e-6, "sigma for {guesses}");
            assert_eq!(
                p.penalization,
                Penalization::Step { gamma },
                "gamma for {guesses}"
            );
        }
    }

    #[test]
    fn step_penalization_cuts_off_at_gamma() {
        let phi = Penalization::Step { gamma: 2 };
        assert_eq!(phi.weight(0), 1.0);
        assert_eq!(phi.weight(1), 1.0);
        assert_eq!(phi.weight(2), 0.0);
        assert_eq!(phi.weight(10), 0.0);
        assert_eq!(Penalization::None.weight(1_000), 1.0);
    }

    #[test]
    fn prior_activates_only_after_alpha_matches() {
        let params = DynamicParams::new(2, 0.1, 5);
        let mut matched = MatchedLatents::new();
        matched.insert(vec![0.0, 0.0]);
        assert!(matched.build_prior(&params).is_none());
        matched.insert(vec![1.0, 1.0]);
        assert!(
            matched.build_prior(&params).is_none(),
            "needs strictly more than alpha"
        );
        matched.insert(vec![2.0, 2.0]);
        assert!(matched.build_prior(&params).is_some());
        assert_eq!(matched.len(), 3);
        assert!(!matched.is_empty());
    }

    #[test]
    fn usage_counts_increase_each_time_the_prior_is_built() {
        let params = DynamicParams::new(0, 0.1, 3);
        let mut matched = MatchedLatents::new();
        matched.insert(vec![0.0]);
        for expected in 1..=3u32 {
            assert!(matched.build_prior(&params).is_some());
            assert_eq!(matched.usage_counts(), &[expected]);
        }
        // After γ = 3 uses the single component is penalized to zero weight
        // and the caller must fall back to the standard prior.
        assert!(matched.build_prior(&params).is_none());
        // Falling back does not advance usage further.
        assert_eq!(matched.usage_counts(), &[3]);
    }

    #[test]
    fn without_penalization_components_never_expire() {
        let params = DynamicParams::new(0, 0.1, 1).without_penalization();
        let mut matched = MatchedLatents::new();
        matched.insert(vec![0.5, -0.5]);
        for _ in 0..20 {
            assert!(matched.build_prior(&params).is_some());
        }
    }

    #[test]
    fn built_prior_samples_near_matched_points() {
        let params = DynamicParams::new(0, 0.05, 100);
        let mut matched = MatchedLatents::new();
        matched.insert(vec![3.0, 3.0]);
        let prior = matched.build_prior(&params).unwrap();
        let mut rng = passflow_nn::rng::seeded(1);
        let samples = prior.sample(100, &mut rng);
        for i in 0..samples.rows() {
            assert!((samples.get(i, 0) - 3.0).abs() < 1.0);
            assert!((samples.get(i, 1) - 3.0).abs() < 1.0);
        }
    }

    #[test]
    fn expired_components_are_excluded_from_the_mixture() {
        let params = DynamicParams::new(0, 0.05, 1);
        let mut matched = MatchedLatents::new();
        matched.insert(vec![10.0]);
        // First build uses the first component and expires it (γ = 1).
        assert!(matched.build_prior(&params).is_some());
        // A newly matched point keeps dynamic sampling alive.
        matched.insert(vec![-10.0]);
        let prior = matched.build_prior(&params).unwrap();
        let mut rng = passflow_nn::rng::seeded(2);
        let samples = prior.sample(50, &mut rng);
        for i in 0..samples.rows() {
            assert!(
                samples.get(i, 0) < 0.0,
                "sample {} came from the expired component",
                samples.get(i, 0)
            );
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn non_positive_sigma_rejected() {
        let _ = DynamicParams::new(1, 0.0, 2);
    }
}
