//! Regenerates Table III: unique and matched passwords per latent-space model.

use passflow_bench::{emit, prepare, scale_from_env};
use passflow_eval::tables;

fn main() -> passflow_core::Result<()> {
    let workbench = prepare(scale_from_env())?;
    let table = tables::table3(&workbench)?;
    emit(&table, "table3");
    Ok(())
}
