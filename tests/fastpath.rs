//! Conformance suite for the inference fast path: the snapshot + workspace
//! pipeline must match the reference per-layer implementations to 0 ULP,
//! and reusing scratch state must never change any observable result.

use std::collections::HashSet;

use passflow::nn::rng as nnrng;
use passflow::nn::{Module, NetWorkspace, ResNet, Tensor};
use passflow::{
    train, Attack, AttackOutcome, CorpusConfig, DynamicParams, FlowConfig, FlowWorkspace,
    GaussianSmoothing, Guesser, GuessingStrategy, PassFlow, SyntheticCorpusGenerator, TrainConfig,
};

fn random_flow(config: FlowConfig, seed: u64) -> PassFlow {
    let mut rng = nnrng::seeded(seed);
    PassFlow::new(config, &mut rng).expect("valid config")
}

fn configs() -> Vec<FlowConfig> {
    vec![
        FlowConfig::tiny(),
        FlowConfig::tiny()
            .with_coupling_layers(2)
            .with_hidden_size(48),
        FlowConfig::tiny()
            .with_coupling_layers(6)
            .with_hidden_size(24),
    ]
}

#[test]
fn fast_inverse_matches_reference_to_zero_ulp() {
    for (i, config) in configs().into_iter().enumerate() {
        let flow = random_flow(config, 100 + i as u64);
        let mut rng = nnrng::seeded(200 + i as u64);
        for rows in [1, 7, 64] {
            let z = Tensor::randn(rows, flow.dim(), &mut rng);
            let reference = flow.inverse_reference(&z);
            let fast = flow.inverse(&z);
            assert_eq!(
                fast.as_slice(),
                reference.as_slice(),
                "config {i} rows {rows}"
            );
        }
    }
}

#[test]
fn fast_forward_matches_reference_to_zero_ulp() {
    for (i, config) in configs().into_iter().enumerate() {
        let flow = random_flow(config, 300 + i as u64);
        let mut rng = nnrng::seeded(400 + i as u64);
        for rows in [1, 5, 33] {
            let x = Tensor::randn(rows, flow.dim(), &mut rng);
            let (z_ref, ld_ref) = flow.forward_reference(&x);
            let (z_fast, ld_fast) = flow.forward(&x);
            assert_eq!(
                z_fast.as_slice(),
                z_ref.as_slice(),
                "config {i} rows {rows}"
            );
            assert_eq!(
                ld_fast.as_slice(),
                ld_ref.as_slice(),
                "config {i} rows {rows}"
            );
        }
    }
}

#[test]
fn resnet_snapshot_matches_forward_tensor_to_zero_ulp() {
    let mut rng = nnrng::seeded(500);
    for (blocks, bounded) in [(1, false), (2, true), (3, false)] {
        let net = ResNet::new(10, 48, 10, blocks, bounded, &mut rng);
        let x = Tensor::randn(29, 10, &mut rng);
        let snap = net.snapshot();
        let mut ws = NetWorkspace::new();
        let mut out = Tensor::default();
        snap.forward_into(&x, &mut ws, &mut out);
        assert_eq!(out.as_slice(), net.forward_tensor(&x).as_slice());
        // The generic Module-level snapshot agrees too.
        let generic = net.export_snapshot().expect("resnets snapshot");
        assert_eq!(generic.forward(&x).as_slice(), out.as_slice());
    }
}

#[test]
fn reused_workspace_is_byte_identical_to_fresh_workspaces() {
    let flow = random_flow(FlowConfig::tiny(), 600);
    let snap = flow.snapshot();
    let mut rng = nnrng::seeded(601);
    let mut shared_ws = FlowWorkspace::new();
    let mut out = Tensor::default();
    // Batches of varying size so every scratch buffer shrinks and regrows.
    for rows in [64, 3, 128, 1, 40] {
        let z = Tensor::randn(rows, flow.dim(), &mut rng);
        snap.inverse_into(&z, &mut shared_ws, &mut out);
        let mut fresh_ws = FlowWorkspace::new();
        let mut fresh_out = Tensor::default();
        snap.inverse_into(&z, &mut fresh_ws, &mut fresh_out);
        assert_eq!(out.as_slice(), fresh_out.as_slice(), "rows {rows}");
    }
}

#[test]
fn session_generation_matches_sample_passwords_exactly() {
    let flow = random_flow(FlowConfig::tiny(), 700);
    let mut session = flow.start_session().expect("flows have sessions");
    for round in 0..3 {
        let mut rng_a = nnrng::seeded(710 + round);
        let mut rng_b = nnrng::seeded(710 + round);
        let via_session = session.generate_batch(257, &mut rng_a);
        let via_flow = flow.sample_passwords(257, &mut rng_b);
        assert_eq!(via_session, via_flow, "round {round}");
    }
}

/// Fixture: a lightly trained flow plus targets drawn from its own samples,
/// so dynamic strategies find matches and exercise the mixture prior.
fn attack_fixture() -> (PassFlow, HashSet<String>) {
    let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(4_000)).generate(42);
    let split = corpus.paper_split(0.8, 1_000, 42);
    let mut rng = nnrng::seeded(800);
    let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).expect("valid config");
    train(
        &flow,
        &split.train,
        &TrainConfig::tiny().with_epochs(2).with_batch_size(256),
    )
    .expect("training succeeds");
    let mut targets = split.test_set();
    targets.extend(
        flow.sample_passwords(200, &mut rng)
            .into_iter()
            .filter(|p| !p.is_empty()),
    );
    (flow, targets)
}

#[test]
fn repeated_attacks_reuse_state_yet_stay_byte_identical() {
    let (flow, targets) = attack_fixture();
    let strategies = [
        GuessingStrategy::Static,
        GuessingStrategy::Dynamic(DynamicParams::new(0, 0.1, 8)),
        GuessingStrategy::DynamicWithSmoothing {
            params: DynamicParams::new(0, 0.1, 8),
            smoothing: GaussianSmoothing::default(),
        },
    ];
    for strategy in strategies {
        let label = strategy.label();
        let run = |shards: usize| -> AttackOutcome {
            Attack::new(&targets)
                .budget(1_200)
                .batch_size(128)
                .checkpoints(vec![400, 800])
                .seed(9)
                .shards(shards)
                .strategy(strategy.clone())
                .run(&flow)
                .unwrap_or_else(|e| panic!("{label} failed: {e}"))
        };
        // Two identical runs: the snapshot cache is cold for the first and
        // warm for the second, and every worker session is rebuilt — the
        // outcomes (reports, matched passwords, samples) must be identical.
        let first = run(1);
        let second = run(1);
        assert_eq!(first, second, "{label}: warm snapshot changed results");
        // Sharded workers each hold their own long-lived workspace; results
        // must still be byte-identical to the sequential run.
        let sharded = run(4);
        assert_eq!(first, sharded, "{label}: worker sessions changed results");
        assert!(
            first.final_report().matched > 0,
            "{label}: fixture must produce matches for the test to bite"
        );
    }
}

#[test]
fn snapshot_cache_follows_training_updates() {
    let (flow, targets) = attack_fixture();
    let before = Attack::new(&targets)
        .budget(400)
        .seed(3)
        .run(&flow)
        .unwrap();
    // Mutate weights: the cached snapshot must invalidate, so a fresh
    // attack reflects the new model rather than stale weights.
    for p in flow.parameters() {
        p.set_value(p.value().add_scalar(0.05));
    }
    let after = Attack::new(&targets)
        .budget(400)
        .seed(3)
        .run(&flow)
        .unwrap();
    assert_ne!(
        before.nonmatched_samples, after.nonmatched_samples,
        "stale snapshot: weight update did not change generated guesses"
    );
}

/// The scalar reference the GEMM contract is stated against: one FMA per
/// (row, col, p) with `p` ascending — exactly the accumulation order the
/// register-blocked, SIMD and threaded kernels all preserve.
fn gemm_reference(a: &Tensor, b: &Tensor) -> Vec<f32> {
    let (m, k) = a.shape();
    let n = b.cols();
    let (a, b) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc = a[i * k + p].mul_add(b[p * n + j], acc);
            }
            out[i * n + j] = acc;
        }
    }
    out
}

#[test]
fn threaded_gemm_matches_reference_over_ragged_shapes() {
    use passflow::nn::kernels::{matmul_into, matmul_into_with};
    use passflow::nn::ThreadPool;

    // A property-style sweep: shapes chosen to hit every tail of the
    // blocked kernel — 16/8/4/1-wide column tails, 4-row blocks and
    // single-row tails, plus k values that are not multiples of anything.
    let shapes = [
        (1usize, 1usize, 1usize),
        (1, 7, 17),
        (3, 5, 16),
        (4, 16, 24),
        (5, 3, 20),
        (7, 9, 7),
        (8, 32, 33),
        (31, 17, 29),
        (64, 24, 48),
        (65, 31, 41),
        (128, 48, 21),
        (256, 64, 64),
    ];
    for (case, &(m, k, n)) in shapes.iter().enumerate() {
        let mut rng = nnrng::seeded(9_000 + case as u64);
        let a = Tensor::randn(m, k, &mut rng);
        let b = Tensor::randn(k, n, &mut rng);
        let reference = gemm_reference(&a, &b);

        let mut serial = Tensor::default();
        matmul_into(&a, &b, &mut serial);
        assert_eq!(
            serial.as_slice(),
            &reference[..],
            "{m}x{k}x{n}: single-threaded kernel diverged from the reference"
        );

        for threads in [2usize, 4] {
            let pool = ThreadPool::new(threads);
            let mut threaded = Tensor::default();
            matmul_into_with(&a, &b, &mut threaded, Some(&pool));
            assert_eq!(
                threaded.as_slice(),
                serial.as_slice(),
                "{m}x{k}x{n}: {threads}-thread result is not bit-identical"
            );
        }
    }
}

/// The quantized tier's documented accuracy contract: on a trained
/// reference model, int8 scoring stays within this many log-prob units of
/// the exact `log_prob_reference` oracle. DESIGN.md ("Threaded GEMM, SIMD
/// tiles & quantized tier") documents the same bound; BENCH_PR8.json
/// records the value actually measured per host.
const QUANT_LOG_PROB_BOUND: f64 = 1.0;

#[test]
fn quantized_log_prob_stays_within_documented_bound_of_reference() {
    let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(2_000))
        .generate(61)
        .into_passwords();
    let mut rng = nnrng::seeded(62);
    let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).expect("valid config");
    train(
        &flow,
        &corpus,
        &TrainConfig::tiny().with_epochs(1).with_batch_size(256),
    )
    .expect("training succeeds");

    let snapshot = flow.snapshot();
    let quantized = snapshot.quantize();
    let x = flow
        .encode_batch(&corpus[..256])
        .expect("synthetic corpus passwords always encode");
    let oracle = flow.log_prob_reference(&x);

    let mut ws = FlowWorkspace::new();
    let mut lp = Tensor::default();
    quantized.log_prob_into(&x, &mut ws, &mut lp);

    let mut max_delta = 0.0f64;
    for (q, r) in lp.as_slice().iter().zip(oracle.iter()) {
        max_delta = max_delta.max((f64::from(*q) - f64::from(*r)).abs());
    }
    assert!(
        max_delta > 0.0,
        "int8 quantization must actually perturb scores — a zero delta \
         means the quantized path silently fell back to f32"
    );
    assert!(
        max_delta < QUANT_LOG_PROB_BOUND,
        "quantized tier exceeded its documented bound: max |delta log-prob| \
         = {max_delta}, documented {QUANT_LOG_PROB_BOUND}"
    );
}
