/root/repo/target/debug/examples/dynamic_attack-0c450584d8ac4d03.d: examples/dynamic_attack.rs Cargo.toml

/root/repo/target/debug/examples/libdynamic_attack-0c450584d8ac4d03.rmeta: examples/dynamic_attack.rs Cargo.toml

examples/dynamic_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
