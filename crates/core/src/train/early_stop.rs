//! Validation-driven early stopping and best-epoch tracking.

use serde::{Deserialize, Serialize};

use crate::error::{FlowError, Result};

/// Configuration of the early-stopping rule.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EarlyStopConfig {
    /// Number of consecutive epochs without significant improvement after
    /// which training stops.
    pub patience: usize,
    /// Minimum decrease of the monitored NLL that counts as an improvement.
    pub min_delta: f32,
}

impl EarlyStopConfig {
    /// Creates a rule with the given patience and a zero improvement margin.
    pub fn new(patience: usize) -> Self {
        EarlyStopConfig {
            patience,
            min_delta: 0.0,
        }
    }

    /// Sets the minimum improvement margin (builder style).
    #[must_use]
    pub fn with_min_delta(mut self, min_delta: f32) -> Self {
        self.min_delta = min_delta;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] on zero patience or a negative /
    /// non-finite margin.
    pub fn validate(&self) -> Result<()> {
        if self.patience == 0 {
            return Err(FlowError::InvalidConfig(
                "early-stop patience must be positive".into(),
            ));
        }
        if !(self.min_delta >= 0.0 && self.min_delta.is_finite()) {
            return Err(FlowError::InvalidConfig(
                "early-stop min_delta must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// What [`EarlyStop::observe`] concluded about an epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochVerdict {
    /// The monitored metric improved (by at least `min_delta`); callers
    /// snapshot best weights on this signal.
    pub improved: bool,
    /// Patience is exhausted; training should stop after this epoch.
    pub stop: bool,
}

/// Tracks the best monitored metric and counts stale epochs.
///
/// The tracker unifies best-epoch selection and early stopping: an epoch
/// whose metric beats the best seen so far by at least `min_delta` resets
/// the stale counter (and is the epoch whose weights the trainer keeps);
/// otherwise the counter grows until `patience` is exhausted. With no
/// patience configured the tracker never stops and degrades to plain
/// best-epoch selection.
#[derive(Clone, Debug)]
pub struct EarlyStop {
    min_delta: f32,
    patience: Option<usize>,
    best: f32,
    stale: usize,
}

impl EarlyStop {
    /// A tracker that only selects the best epoch and never stops.
    pub fn best_only() -> Self {
        EarlyStop {
            min_delta: 0.0,
            patience: None,
            best: f32::INFINITY,
            stale: 0,
        }
    }

    /// A tracker enforcing the given early-stop rule.
    pub fn with_rule(config: EarlyStopConfig) -> Self {
        EarlyStop {
            min_delta: config.min_delta,
            patience: Some(config.patience),
            best: f32::INFINITY,
            stale: 0,
        }
    }

    /// Restores mid-run tracker state (for checkpoint resume).
    pub fn restore(&mut self, best: f32, stale: usize) {
        self.best = best;
        self.stale = stale;
    }

    /// Records an epoch's monitored NLL.
    pub fn observe(&mut self, metric: f32) -> EpochVerdict {
        let improved = metric < self.best - self.min_delta;
        if improved {
            self.best = metric;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        EpochVerdict {
            improved,
            stop: self.patience.is_some_and(|p| self.stale >= p),
        }
    }

    /// Best metric observed so far (`+inf` before the first observation).
    pub fn best(&self) -> f32 {
        self.best
    }

    /// Number of consecutive epochs without improvement.
    pub fn stale(&self) -> usize {
        self.stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_resets_patience() {
        let mut es = EarlyStop::with_rule(EarlyStopConfig::new(2));
        assert_eq!(
            es.observe(5.0),
            EpochVerdict {
                improved: true,
                stop: false
            }
        );
        assert!(!es.observe(5.0).improved); // equal is not an improvement
        assert!(es.observe(4.0).improved);
        assert_eq!(es.stale(), 0);
        assert_eq!(es.best(), 4.0);
    }

    #[test]
    fn patience_exhaustion_stops() {
        let mut es = EarlyStop::with_rule(EarlyStopConfig::new(2));
        es.observe(3.0);
        assert!(!es.observe(3.5).stop);
        assert!(es.observe(3.4).stop);
    }

    #[test]
    fn min_delta_requires_significant_improvement() {
        let mut es = EarlyStop::with_rule(EarlyStopConfig::new(1).with_min_delta(0.5));
        es.observe(5.0);
        let v = es.observe(4.8); // improved, but not by 0.5
        assert!(!v.improved);
        assert!(v.stop);
        assert_eq!(es.best(), 5.0);
    }

    #[test]
    fn best_only_never_stops() {
        let mut es = EarlyStop::best_only();
        es.observe(2.0);
        for _ in 0..100 {
            assert!(!es.observe(9.0).stop);
        }
        assert_eq!(es.best(), 2.0);
        assert_eq!(es.stale(), 100);
    }

    #[test]
    fn restore_resumes_mid_count() {
        let mut es = EarlyStop::with_rule(EarlyStopConfig::new(3));
        es.restore(1.5, 2);
        assert_eq!(es.best(), 1.5);
        let v = es.observe(1.6);
        assert!(v.stop, "restored stale count must carry over");
    }

    #[test]
    fn config_validation() {
        assert!(EarlyStopConfig::new(3).validate().is_ok());
        assert!(EarlyStopConfig::new(0).validate().is_err());
        assert!(EarlyStopConfig::new(1)
            .with_min_delta(-0.1)
            .validate()
            .is_err());
    }
}
