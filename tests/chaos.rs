//! Chaos suite: the serving stack under injected store faults, expired
//! deadlines, hostile clients, queue saturation, killed batcher lanes and
//! idle-connection floods.
//!
//! Every test drives a **live server** (real sockets, real threads) while
//! one failure domain misbehaves, and holds the same bar throughout:
//! zero panics, every connection gets a well-formed HTTP response or a
//! clean close, scores stay bit-exact, and the system *recovers* once the
//! faults stop. Store faults come from [`FaultyIo`] with a fixed seed, so
//! the single-threaded phases see the exact same fault stream on every
//! run — failures here are bugs, not weather.

use std::io::Write as _;
use std::net::Shutdown;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use passflow::serve::client::{self, ClientResponse, Connection};
use passflow::serve::{
    serve, BatcherConfig, BreakerConfig, ModelRegistry, ServedModel, ServerConfig, ServerHandle,
};
use passflow::store::{DigestStore, FaultInjector, FaultPlan, FaultyIo, FileIo};
use passflow::{DigestConfig, DigestStoreBuilder, FlowConfig, PassFlow, ProbabilityModel};

fn tiny_flow(seed: u64) -> PassFlow {
    let mut rng = passflow::nn::rng::seeded(seed);
    PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
}

fn chaos_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn start_server(config: ServerConfig, seed: u64) -> (ServerHandle, PassFlow) {
    let flow = tiny_flow(seed);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(ServedModel::from_flow("default", &flow, 1, None));
    let server = serve(config, registry).expect("bind on loopback");
    (server, flow)
}

/// Builds a digest artifact from `passwords` and opens it through a
/// fault-injecting io. The artifact is opened *quietly* (header and index
/// reads are not faulted — open-failure paths are the corruption tests'
/// job), then the plan is armed for every read the server makes.
fn faulty_digest(
    tag: &str,
    passwords: &[String],
    plan: FaultPlan,
) -> (Arc<DigestStore>, Arc<FaultInjector>, PathBuf) {
    let path = std::env::temp_dir().join(format!("pfchaos-{tag}-{}.pfd", std::process::id()));
    let mut builder = DigestStoreBuilder::new(DigestConfig::default());
    for pw in passwords {
        builder.add_password(pw).unwrap();
    }
    builder.finish(&path).unwrap();
    let io = FaultyIo::new(Box::new(FileIo::open(&path).unwrap()), plan);
    let injector = io.injector();
    injector.set_active(false);
    let store = DigestStore::open_with_io(&path, Box::new(io)).unwrap();
    injector.set_active(true);
    (Arc::new(store), injector, path)
}

/// One request with extra headers, written raw (the client helper has no
/// header support — deadlines ride on `X-Passflow-Deadline-Ms`).
fn raw_request(
    conn: &mut Connection,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> ClientResponse {
    let mut raw = format!(
        "{method} {path} HTTP/1.1\r\nhost: loopback\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (name, value) in headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str("\r\n");
    raw.push_str(body);
    conn.stream().write_all(raw.as_bytes()).unwrap();
    conn.stream().flush().unwrap();
    conn.read_response().unwrap()
}

/// The `"breached"` token for one password in a screen response: `"true"`,
/// `"false"` or `"null"` (keys sort, so the verdict precedes `"password"`).
fn breached_token(text: &str, pw: &str) -> String {
    let before = text
        .split(&format!("\"password\":\"{pw}\""))
        .next()
        .unwrap_or_else(|| panic!("{pw} missing from {text}"));
    before
        .rsplit("\"breached\":")
        .next()
        .unwrap()
        .split([',', '}'])
        .next()
        .unwrap()
        .to_string()
}

fn screen_one(addr: std::net::SocketAddr, pw: &str) -> ClientResponse {
    let body = format!("{{\"passwords\":[\"{pw}\"]}}");
    client::request(addr, "POST", "/v1/screen", Some(&body)).unwrap()
}

// ---------------------------------------------------------------------------
// Store faults: transient noise is absorbed, outages degrade and recover
// ---------------------------------------------------------------------------

#[test]
fn screen_verdicts_stay_exact_under_transient_store_faults() {
    // ~35% of reads misbehave: short reads, EINTR and bounded transients,
    // each also stalling briefly. The retry discipline must absorb all of
    // it — every verdict stays exactly what a clean store serves.
    let breached: Vec<String> = (0..2_000).map(|i| format!("breached-{i}")).collect();
    let plan = FaultPlan {
        seed: 0xC0FFEE,
        short_read_per_mille: 150,
        interrupt_per_mille: 120,
        transient_per_mille: 80,
        latency: Duration::from_micros(200),
    };
    let (digest, injector, path) = faulty_digest("transient", &breached, plan);
    let oracle = DigestStore::open(&path).unwrap();
    let (server, _flow) = start_server(
        ServerConfig {
            digest: Some(digest),
            ..chaos_config()
        },
        60,
    );
    let addr = server.addr();

    // A single-threaded probe sequence (fault stream stays deterministic):
    // breached and clean passwords interleaved.
    for i in 0..24 {
        let pw = if i % 3 == 2 {
            format!("clean-{i}")
        } else {
            format!("breached-{}", i * 77)
        };
        let response = screen_one(addr, &pw);
        assert_eq!(response.status, 200, "{}", response.text());
        let text = response.text();
        assert!(
            text.contains("\"degraded\":false"),
            "fault noise must not degrade: {text}"
        );
        let expected = oracle.contains_password(&pw).unwrap().is_some();
        assert_eq!(
            breached_token(&text, &pw),
            expected.to_string(),
            "{pw}: verdict drifted under faults"
        );
    }
    assert!(
        injector.injected_faults() > 0,
        "the plan must actually have fired ({} reads)",
        injector.reads()
    );

    // The breaker never tripped: the store is healthy, just noisy.
    let health = client::request(addr, "GET", "/healthz", None)
        .unwrap()
        .text();
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert_eq!(server.metrics().store_faults_total(), 0, "retries absorbed");

    server.shutdown();
    server.join();
    let _ = std::fs::remove_file(path);
}

#[test]
fn outage_opens_the_breaker_degrades_screen_and_recovers() {
    let breached: Vec<String> = (0..500).map(|i| format!("breached-{i}")).collect();
    let (digest, injector, path) = faulty_digest("outage", &breached, FaultPlan::quiet(1));
    let cooldown = Duration::from_millis(400);
    let (server, flow) = start_server(
        ServerConfig {
            digest: Some(digest),
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown,
            },
            ..chaos_config()
        },
        61,
    );
    let addr = server.addr();
    let probe = "breached-7";
    let probe_bits = flow.password_log_prob(probe).unwrap().to_bits();

    // Healthy baseline.
    let text = screen_one(addr, probe).text();
    assert_eq!(breached_token(&text, probe), "true", "{text}");
    assert!(text.contains("\"degraded\":false"), "{text}");

    // The store dies. Every screen still answers 200 with bit-exact
    // scores; only the verdict is withheld, and explicitly so.
    injector.set_outage(true);
    for _ in 0..3 {
        let response = screen_one(addr, probe);
        assert_eq!(response.status, 200, "{}", response.text());
        let text = response.text();
        assert_eq!(
            breached_token(&text, probe),
            "null",
            "degraded must not claim a verdict: {text}"
        );
        assert!(text.contains("\"degraded\":true"), "{text}");
        assert!(
            text.contains(&format!("\"log_prob_bits\":\"{probe_bits:016x}\"")),
            "scores must stay exact while degraded: {text}"
        );
    }

    // Three consecutive failures tripped the breaker: healthz says so,
    // range (which has nothing to serve without the store) is an honest
    // 503, and — the point of a breaker — reads *stop* while it is open.
    let health = client::request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200, "liveness is not the same as health");
    let health = health.text();
    assert!(health.contains("\"status\":\"degraded\""), "{health}");
    assert!(health.contains("\"breaker\":\"open\""), "{health}");
    let range = client::request(addr, "GET", "/v1/range/CBFDA", None).unwrap();
    assert_eq!(range.status, 503, "{}", range.text());

    let reads_while_open = injector.reads();
    for _ in 0..2 {
        let text = screen_one(addr, probe).text();
        assert_eq!(breached_token(&text, probe), "null", "{text}");
    }
    assert_eq!(
        injector.reads(),
        reads_while_open,
        "an open breaker must not touch the dead store"
    );

    // The disk comes back; after the cooldown one half-open probe heals
    // the breaker and full service resumes.
    injector.set_outage(false);
    std::thread::sleep(cooldown + Duration::from_millis(150));
    let text = screen_one(addr, probe).text();
    assert_eq!(breached_token(&text, probe), "true", "recovered: {text}");
    assert!(text.contains("\"degraded\":false"), "{text}");
    let health = client::request(addr, "GET", "/healthz", None)
        .unwrap()
        .text();
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"breaker\":\"closed\""), "{health}");
    let range = client::request(addr, "GET", "/v1/range/CBFDA", None).unwrap();
    assert_eq!(range.status, 200, "{}", range.text());

    // The whole episode is visible in the metrics.
    assert!(server.metrics().store_faults_total() >= 3);
    let metrics = client::request(addr, "GET", "/metrics", None)
        .unwrap()
        .text();
    assert!(metrics.contains("passflow_breaker_state 0"), "{metrics}");
    assert!(metrics.contains("passflow_store_faults_total"), "{metrics}");

    server.shutdown();
    server.join();
    let _ = std::fs::remove_file(path);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

#[test]
fn expired_deadlines_answer_504_not_stale_work() {
    // A long straggler window so a short-deadline job can expire *inside*
    // a tick, not just before submission.
    let (server, _flow) = start_server(
        ServerConfig {
            batcher: BatcherConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(250),
                ..BatcherConfig::default()
            },
            ..chaos_config()
        },
        62,
    );
    let addr = server.addr();
    let body = r#"{"passwords":["jimmy91"]}"#;

    // An already-blown deadline never reaches the batcher.
    let mut conn = Connection::open(addr, Duration::from_secs(5)).unwrap();
    let response = raw_request(
        &mut conn,
        "POST",
        "/v1/score",
        &[("x-passflow-deadline-ms", "0")],
        body,
    );
    assert_eq!(response.status, 504, "{}", response.text());

    // A request whose deadline expires while it waits for the tick gets a
    // 504 at drain time; the patient request sharing the tick still
    // scores. (Whichever of the two opens the tick, the outcome is the
    // same — the short deadline expires well inside the 250ms window.)
    let patient = std::thread::spawn(move || {
        client::request(
            addr,
            "POST",
            "/v1/score",
            Some(r#"{"passwords":["alpha"]}"#),
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(80));
    let response = raw_request(
        &mut conn,
        "POST",
        "/v1/score",
        &[("x-passflow-deadline-ms", "50")],
        body,
    );
    assert_eq!(response.status, 504, "{}", response.text());
    let patient = patient.join().unwrap();
    assert_eq!(patient.status, 200, "{}", patient.text());
    assert_eq!(server.metrics().deadline_expired_total(), 2);

    // Header validation: garbage is a 400; a huge value cannot extend the
    // server default (it still answers normally, just under the default).
    let response = raw_request(
        &mut conn,
        "POST",
        "/v1/score",
        &[("x-passflow-deadline-ms", "soon")],
        body,
    );
    assert_eq!(response.status, 400, "{}", response.text());
    let response = raw_request(
        &mut conn,
        "POST",
        "/v1/score",
        &[("x-passflow-deadline-ms", "3600000")],
        body,
    );
    assert_eq!(response.status, 200, "{}", response.text());

    server.shutdown();
    server.join();
}

// ---------------------------------------------------------------------------
// Hostile clients: slow-loris and mid-body disconnects
// ---------------------------------------------------------------------------

#[test]
fn slow_loris_and_torn_bodies_cannot_pin_a_handler() {
    let (server, flow) = start_server(
        ServerConfig {
            request_read_budget: Duration::from_millis(200),
            read_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        },
        63,
    );
    let addr = server.addr();

    // Slow loris: one byte every 25ms never finishes a request line. The
    // read budget cuts the peer off at 200ms — a 408 if the dribble pauses
    // in time to read it, or a reset once the server has hung up (writing
    // into a closed socket races the buffered response away). Either way
    // the handler is freed; what this test must never see is a hang.
    let mut loris = Connection::open(addr, Duration::from_secs(5)).unwrap();
    let until = Instant::now() + Duration::from_millis(400);
    while Instant::now() < until {
        if loris
            .stream()
            .write_all(b"G")
            .and_then(|_| loris.stream().flush())
            .is_err()
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    // (An Err here means the reset beat us to the buffered 408 — the
    // connection was freed either way, which is the property under test.)
    if let Ok(response) = loris.read_response() {
        assert_eq!(response.status, 408, "{}", response.text());
    }

    // Mid-body disconnect, politely (write side closed): the truncated
    // body is a clean 400 we can still read over our live read half.
    let mut torn = Connection::open(addr, Duration::from_secs(5)).unwrap();
    torn.stream()
        .write_all(b"POST /v1/score HTTP/1.1\r\ncontent-length: 64\r\n\r\n{\"passwords\"")
        .unwrap();
    torn.stream().shutdown(Shutdown::Write).unwrap();
    let response = torn.read_response().unwrap();
    assert_eq!(response.status, 400, "{}", response.text());

    // Mid-body disconnect, rudely (socket dropped outright).
    {
        let mut rude = Connection::open(addr, Duration::from_secs(5)).unwrap();
        let _ = rude
            .stream()
            .write_all(b"POST /v1/score HTTP/1.1\r\ncontent-length: 64\r\n\r\n{\"pass");
    }

    // The server took all of that without leaking a handler: a fresh
    // connection still gets healthy, bit-exact service.
    let health = client::request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert!(
        health.text().contains("\"status\":\"ok\""),
        "{}",
        health.text()
    );
    let response = client::request(
        addr,
        "POST",
        "/v1/score",
        Some(r#"{"passwords":["jimmy91"]}"#),
    )
    .unwrap();
    assert_eq!(response.status, 200);
    let expected = flow.password_log_prob("jimmy91").unwrap().to_bits();
    assert!(
        response
            .text()
            .contains(&format!("\"log_prob_bits\":\"{expected:016x}\"")),
        "{}",
        response.text()
    );

    server.shutdown();
    server.join();
}

/// Rude drops against the *multiplexed* reader: connections that complete
/// a request, park in the poller, then vanish without a close handshake
/// must be reaped — no thread leak, no stuck `/healthz` connection count.
#[test]
fn parked_connections_that_vanish_are_reaped() {
    let (server, _flow) = start_server(
        ServerConfig {
            idle_timeout: Duration::from_secs(60),
            ..chaos_config()
        },
        65,
    );
    let addr = server.addr();

    // 20 connections each serve one request (so they are parked, not
    // mid-read), then drop rudely.
    for i in 0..20 {
        let mut conn = Connection::open(addr, Duration::from_secs(5)).unwrap();
        let body = format!("{{\"passwords\":[\"van{i}\"]}}");
        let response = conn.request("POST", "/v1/score", Some(&body)).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
        drop(conn); // no graceful goodbye
    }

    // The poller's peek sweep sees EOF on each and unregisters it.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut active = usize::MAX;
    // ≤ 2: the healthz probe itself plus at most one not-yet-reaped
    // predecessor probe.
    while active > 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
        let health = client::request(addr, "GET", "/healthz", None)
            .unwrap()
            .text();
        // `"active":N` inside the connections component — N includes the
        // probe connection itself.
        active = health
            .split("\"connections\":{\"active\":")
            .nth(1)
            .and_then(|rest| {
                rest.chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .ok()
            })
            .unwrap_or(usize::MAX);
    }
    assert!(
        active <= 2,
        "vanished parked connections must be reaped (still {active} active)"
    );

    server.shutdown();
    server.join();
}

// ---------------------------------------------------------------------------
// Saturation: load beyond the queue sheds cleanly and recovers
// ---------------------------------------------------------------------------

#[test]
fn saturated_batcher_sheds_503_and_serves_on() {
    // A one-slot queue behind a 40ms straggler window: concurrent clients
    // *will* find it full. Shedding must be a clean 503 per request — not
    // a hang, not a tear — and service must be exact afterwards.
    let (server, flow) = start_server(
        ServerConfig {
            batcher: BatcherConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(40),
                queue_capacity: 1,
                ..BatcherConfig::default()
            },
            max_connections: 64,
            ..chaos_config()
        },
        64,
    );
    let addr = server.addr();

    let clients: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let body = format!("{{\"passwords\":[\"pw{t}\"]}}");
                let (mut ok, mut shed) = (0u64, 0u64);
                for _ in 0..25 {
                    let response = client::request(addr, "POST", "/v1/score", Some(&body)).unwrap();
                    match response.status {
                        200 => {
                            assert!(response.text().contains("\"results\":"), "torn 200");
                            ok += 1;
                        }
                        503 => {
                            assert!(response.text().contains("\"error\":"), "torn 503");
                            shed += 1;
                        }
                        other => panic!("unexpected status {other}: {}", response.text()),
                    }
                }
                (ok, shed)
            })
        })
        .collect();

    let (mut total_ok, mut total_shed) = (0u64, 0u64);
    for thread in clients {
        let (ok, shed) = thread.join().expect("no client may panic");
        total_ok += ok;
        total_shed += shed;
    }
    assert_eq!(total_ok + total_shed, 8 * 25, "every request got an answer");
    assert!(total_ok > 0, "some requests must get through");
    assert!(total_shed > 0, "a one-slot queue under 8 clients must shed");
    assert!(server.metrics().shed_total() >= total_shed);

    // Pressure off: healthy and bit-exact again.
    let health = client::request(addr, "GET", "/healthz", None)
        .unwrap()
        .text();
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    let response = client::request(
        addr,
        "POST",
        "/v1/score",
        Some(r#"{"passwords":["dragon"]}"#),
    )
    .unwrap();
    assert_eq!(response.status, 200);
    let expected = flow.password_log_prob("dragon").unwrap().to_bits();
    assert!(
        response
            .text()
            .contains(&format!("\"log_prob_bits\":\"{expected:016x}\"")),
        "{}",
        response.text()
    );

    server.shutdown();
    server.join();
}

// ---------------------------------------------------------------------------
// Lane death: a killed batcher lane degrades, survivors serve exactly
// ---------------------------------------------------------------------------

#[test]
fn killed_lane_under_live_load_degrades_and_survivors_serve_exactly() {
    let (server, flow) = start_server(
        ServerConfig {
            batcher: BatcherConfig {
                lanes: 3,
                max_batch: 32,
                max_wait: Duration::from_millis(3),
                queue_capacity: 1024,
                ..BatcherConfig::default()
            },
            ..chaos_config()
        },
        66,
    );
    let addr = server.addr();
    let handle = server.batcher();

    // Live load across the kill: 4 clients, each sending 30 requests. The
    // kill lands mid-stream; every client must get an answer for every
    // request — scored bit-exact or (for jobs caught inside the dying
    // lane at the instant of death) a clean 500 — never a hang.
    let clients: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut dropped = 0u64;
                for i in 0..30 {
                    let pw = format!("ch{t}x{i}");
                    let body = format!("{{\"passwords\":[\"{pw}\"]}}");
                    let response = client::request(addr, "POST", "/v1/score", Some(&body)).unwrap();
                    match response.status {
                        200 => got.push((pw, response.text())),
                        500 => dropped += 1,
                        other => panic!("unexpected status {other}: {}", response.text()),
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                (got, dropped)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    handle.kill_lane(1);

    let mut scored = 0usize;
    for thread in clients {
        let (got, _dropped) = thread.join().expect("no client may hang or panic");
        for (pw, text) in got {
            let expected = flow.password_log_prob(&pw).unwrap().to_bits();
            assert!(
                text.contains(&format!("\"log_prob_bits\":\"{expected:016x}\"")),
                "{pw} drifted across the lane kill: {text}"
            );
            scored += 1;
        }
    }
    assert!(scored > 0, "surviving lanes must keep scoring");

    // The corpse is visible and correctly attributed.
    assert!(!handle.lane_alive(1), "killed lane must report dead");
    assert_eq!(handle.alive_lanes(), 2);
    let health = client::request(addr, "GET", "/healthz", None)
        .unwrap()
        .text();
    assert!(health.contains("\"status\":\"degraded\""), "{health}");
    assert!(
        health.contains("{\"lane\":1,\"status\":\"dead\"}"),
        "{health}"
    );
    assert!(
        health.contains("{\"lane\":0,\"status\":\"ok\"}"),
        "{health}"
    );
    assert!(
        health.contains("{\"lane\":2,\"status\":\"ok\"}"),
        "{health}"
    );

    // No phantom failure metrics: nothing expired, nothing shed, and the
    // metrics endpoint still renders every lane series.
    assert_eq!(server.metrics().deadline_expired_total(), 0);
    assert_eq!(server.metrics().shed_total(), 0);
    let metrics = client::request(addr, "GET", "/metrics", None)
        .unwrap()
        .text();
    for lane in 0..3 {
        assert!(
            metrics.contains(&format!("passflow_lane_depth{{lane=\"{lane}\"}}")),
            "{metrics}"
        );
    }

    // Post-kill service is exact, and shutdown with a dead lane is clean.
    let response = client::request(
        addr,
        "POST",
        "/v1/score",
        Some(r#"{"passwords":["jimmy91"]}"#),
    )
    .unwrap();
    assert_eq!(response.status, 200);
    let expected = flow.password_log_prob("jimmy91").unwrap().to_bits();
    assert!(
        response
            .text()
            .contains(&format!("\"log_prob_bits\":\"{expected:016x}\"")),
        "{}",
        response.text()
    );

    server.shutdown();
    server.join();
}

// ---------------------------------------------------------------------------
// Idle-connection flood: parked keep-alive sockets cost ~0 threads
// ---------------------------------------------------------------------------

/// `/proc/self/status` Threads count (0 off-Linux, skipping the assert).
fn process_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

#[test]
fn hundreds_of_idle_keepalive_connections_cost_no_threads() {
    let (server, flow) = start_server(chaos_config(), 67);
    let addr = server.addr();

    let before = process_threads();
    // 200 connections each complete one request (so they are genuinely
    // parked keep-alive peers, not half-open sockets) and then sit idle.
    let mut parked: Vec<Connection> = (0..200)
        .map(|i| {
            let mut conn = Connection::open(addr, Duration::from_secs(10)).unwrap();
            let body = format!("{{\"passwords\":[\"idle{i}\"]}}");
            let response = conn.request("POST", "/v1/score", Some(&body)).unwrap();
            assert_eq!(response.status, 200, "{}", response.text());
            conn
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    let after = process_threads();

    if before > 0 {
        let delta = after.saturating_sub(before);
        assert!(
            delta < 8,
            "200 idle keep-alive connections must cost ~0 threads \
             (thread-per-connection would cost 200; measured +{delta})"
        );
    }

    // Parked is not dead: every sampled connection still serves, exactly.
    let expected = flow.password_log_prob("jimmy91").unwrap().to_bits();
    for conn in parked.iter_mut().step_by(37) {
        let response = conn
            .request("POST", "/v1/score", Some(r#"{"passwords":["jimmy91"]}"#))
            .unwrap();
        assert_eq!(response.status, 200);
        assert!(
            response
                .text()
                .contains(&format!("\"log_prob_bits\":\"{expected:016x}\"")),
            "{}",
            response.text()
        );
    }

    drop(parked);
    server.shutdown();
    server.join();
}
