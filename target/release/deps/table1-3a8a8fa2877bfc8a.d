/root/repo/target/release/deps/table1-3a8a8fa2877bfc8a.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-3a8a8fa2877bfc8a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
