/root/repo/target/debug/deps/figure4-81a7b14567895cd2.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-81a7b14567895cd2: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
