//! Sampling strategies for password guessing.
//!
//! The paper evaluates three generation strategies (Table II):
//!
//! * **PassFlow-Static** — sample the standard-normal prior and invert the
//!   flow,
//! * **PassFlow-Dynamic** — Dynamic Sampling with penalization
//!   ([`DynamicParams`], Algorithm 1): once enough guesses have matched, the
//!   prior becomes a Gaussian mixture centred on the matched latent points,
//! * **PassFlow-Dynamic+GS** — Dynamic Sampling plus data-space
//!   [`GaussianSmoothing`] to reduce collisions (Section III-C).

mod dynamic;
mod smoothing;

pub use dynamic::{DynamicParams, MatchedLatents, Penalization};
pub use smoothing::GaussianSmoothing;

use serde::{Deserialize, Serialize};

/// Which of the paper's generation strategies a guessing attack uses.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GuessingStrategy {
    /// Static sampling from the standard-normal prior (PassFlow-Static).
    Static,
    /// Dynamic Sampling with penalization (PassFlow-Dynamic).
    Dynamic(DynamicParams),
    /// Dynamic Sampling plus data-space Gaussian smoothing
    /// (PassFlow-Dynamic+GS).
    DynamicWithSmoothing {
        /// Dynamic-sampling parameters.
        params: DynamicParams,
        /// Data-space smoothing parameters.
        smoothing: GaussianSmoothing,
    },
}

impl GuessingStrategy {
    /// The strategy label used in tables and reports.
    pub fn label(&self) -> &'static str {
        match self {
            GuessingStrategy::Static => "PassFlow-Static",
            GuessingStrategy::Dynamic(_) => "PassFlow-Dynamic",
            GuessingStrategy::DynamicWithSmoothing { .. } => "PassFlow-Dynamic+GS",
        }
    }

    /// The strategy label for an arbitrary guesser name (e.g.
    /// `"PassFlow-Static"`, `"cwae-Dynamic+GS"`), used by the attack engine
    /// to tag outcomes.
    pub fn label_for(&self, guesser_name: &str) -> String {
        match self {
            GuessingStrategy::Static => format!("{guesser_name}-Static"),
            GuessingStrategy::Dynamic(_) => format!("{guesser_name}-Dynamic"),
            GuessingStrategy::DynamicWithSmoothing { .. } => {
                format!("{guesser_name}-Dynamic+GS")
            }
        }
    }

    /// The paper's default strategy for a given guess budget: dynamic
    /// sampling with Table I parameters and Gaussian smoothing.
    pub fn paper_default(num_guesses: u64) -> Self {
        GuessingStrategy::DynamicWithSmoothing {
            params: DynamicParams::paper_defaults(num_guesses),
            smoothing: GaussianSmoothing::default(),
        }
    }

    /// Returns the dynamic-sampling parameters if this strategy uses them.
    pub fn dynamic_params(&self) -> Option<&DynamicParams> {
        match self {
            GuessingStrategy::Static => None,
            GuessingStrategy::Dynamic(p) => Some(p),
            GuessingStrategy::DynamicWithSmoothing { params, .. } => Some(params),
        }
    }

    /// Returns the smoothing configuration if this strategy uses it.
    pub fn smoothing(&self) -> Option<&GaussianSmoothing> {
        match self {
            GuessingStrategy::DynamicWithSmoothing { smoothing, .. } => Some(smoothing),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper_rows() {
        assert_eq!(GuessingStrategy::Static.label(), "PassFlow-Static");
        assert_eq!(
            GuessingStrategy::Dynamic(DynamicParams::default()).label(),
            "PassFlow-Dynamic"
        );
        assert_eq!(
            GuessingStrategy::paper_default(100_000).label(),
            "PassFlow-Dynamic+GS"
        );
    }

    #[test]
    fn accessors_expose_strategy_components() {
        let s = GuessingStrategy::Static;
        assert!(s.dynamic_params().is_none());
        assert!(s.smoothing().is_none());

        let d = GuessingStrategy::Dynamic(DynamicParams::default());
        assert!(d.dynamic_params().is_some());
        assert!(d.smoothing().is_none());

        let gs = GuessingStrategy::paper_default(1_000_000);
        assert!(gs.dynamic_params().is_some());
        assert!(gs.smoothing().is_some());
    }
}
