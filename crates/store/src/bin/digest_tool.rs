//! `digest_tool` — build, merge, query and verify `PFDIGEST v1` artifacts.
//!
//! ```text
//! digest_tool build  --out breach.pfd [--no-counts] [--digest-bytes 16]
//!                    [--block-records 1024] [--memory-records N]
//!                    [wordlist…]          # stdin when no files given
//! digest_tool merge  --out merged.pfd shard1.pfd shard2.pfd …
//! digest_tool query  --digest breach.pfd (--password PW | --prefix HEX | --hash HEX)
//! digest_tool verify --digest breach.pfd
//! digest_tool hash   PASSWORD             # prints SHA1(password) hex
//! ```
//!
//! Exit status is non-zero on any failure, so CI can drive the whole
//! build → verify → serve → curl pipeline from a shell script.

use std::io::BufReader;
use std::process::ExitCode;

use passflow_store::{
    merge_artifacts, sha1, DigestConfig, DigestStore, DigestStoreBuilder, StoreError,
};

fn usage() -> String {
    "usage: digest_tool <build|merge|query|verify|hash> [options]\n\
     \x20 build  --out FILE [--no-counts] [--digest-bytes N] [--block-records N] \
     [--memory-records N] [wordlist…]\n\
     \x20 merge  --out FILE shard.pfd…\n\
     \x20 query  --digest FILE (--password PW | --prefix HEX | --hash HEX)\n\
     \x20 verify --digest FILE\n\
     \x20 hash   PASSWORD"
        .to_string()
}

/// Pulls `--flag value` out of `args`, removing both tokens.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(value))
}

/// Pulls a bare `--flag` out of `args`, removing it.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_usize(value: Option<String>, flag: &str, default: usize) -> Result<usize, String> {
    match value {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{flag} must be a number")),
    }
}

fn build(mut args: Vec<String>) -> Result<(), String> {
    let out = take_value(&mut args, "--out")?.ok_or("build needs --out")?;
    let config = DigestConfig {
        digest_bytes: parse_usize(
            take_value(&mut args, "--digest-bytes")?,
            "--digest-bytes",
            16,
        )?,
        counts: !take_flag(&mut args, "--no-counts"),
        records_per_block: parse_usize(
            take_value(&mut args, "--block-records")?,
            "--block-records",
            1024,
        )?,
    };
    let memory = parse_usize(
        take_value(&mut args, "--memory-records")?,
        "--memory-records",
        passflow_store::DEFAULT_MEMORY_RECORDS,
    )?;
    let mut builder = DigestStoreBuilder::new(config).with_memory_records(memory);
    let mut total = 0u64;
    if args.is_empty() {
        total += builder
            .add_wordlist(std::io::stdin().lock())
            .map_err(|e| e.to_string())?;
    } else {
        for path in &args {
            let file = std::fs::File::open(path).map_err(|e| format!("opening {path:?}: {e}"))?;
            total += builder
                .add_wordlist(BufReader::new(file))
                .map_err(|e| format!("{path}: {e}"))?;
        }
    }
    let stats = builder.finish(&out).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {out}: {} unique digests from {total} passwords, {} blocks, {} bytes",
        stats.record_count, stats.block_count, stats.bytes
    );
    Ok(())
}

fn merge(mut args: Vec<String>) -> Result<(), String> {
    let out = take_value(&mut args, "--out")?.ok_or("merge needs --out")?;
    if args.is_empty() {
        return Err("merge needs at least one input artifact".to_string());
    }
    let stats = merge_artifacts(&args, &out).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {out}: {} unique digests from {} shards, {} blocks, {} bytes",
        stats.record_count,
        args.len(),
        stats.block_count,
        stats.bytes
    );
    Ok(())
}

fn query(mut args: Vec<String>) -> Result<(), String> {
    let path = take_value(&mut args, "--digest")?.ok_or("query needs --digest")?;
    let store = DigestStore::open(&path).map_err(|e| format!("{path}: {e}"))?;
    let password = take_value(&mut args, "--password")?;
    let prefix = take_value(&mut args, "--prefix")?;
    let hash = take_value(&mut args, "--hash")?;
    match (password, prefix, hash) {
        (Some(pw), None, None) => {
            let digest = sha1::password_digest(&pw);
            match store.contains_password(&pw).map_err(|e| e.to_string())? {
                Some(count) => println!("BREACHED {} count={count}", sha1::to_hex(&digest)),
                None => println!("CLEAN {}", sha1::to_hex(&digest)),
            }
        }
        (None, Some(prefix), None) => {
            let entries = store.range(&prefix).map_err(|e| e.to_string())?;
            for entry in &entries {
                println!("{}:{}", entry.suffix, entry.count);
            }
            eprintln!(
                "{} suffixes under prefix {}",
                entries.len(),
                prefix.to_ascii_uppercase()
            );
        }
        (None, None, Some(hex)) => {
            let digest = sha1::from_hex(&hex).ok_or("--hash must be hex of even length")?;
            if digest.len() < store.config().digest_bytes {
                return Err(format!(
                    "--hash needs at least {} bytes of digest",
                    store.config().digest_bytes
                ));
            }
            match store.contains_digest(&digest).map_err(|e| e.to_string())? {
                Some(count) => println!("BREACHED {} count={count}", hex.to_ascii_uppercase()),
                None => println!("CLEAN {}", hex.to_ascii_uppercase()),
            }
        }
        _ => return Err("query needs exactly one of --password, --prefix, --hash".to_string()),
    }
    Ok(())
}

fn verify(mut args: Vec<String>) -> Result<(), String> {
    let path = take_value(&mut args, "--digest")?.ok_or("verify needs --digest")?;
    let store = DigestStore::open(&path).map_err(|e| format!("{path}: {e}"))?;
    let report = store.verify().map_err(|e| format!("{path}: {e}"))?;
    println!(
        "ok: {} records in {} blocks, {} bytes, checksum {:016x} ({:?})",
        report.record_count,
        report.block_count,
        store.file_len(),
        report.checksum,
        store.config(),
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err(usage());
    }
    let command = args.remove(0);
    match command.as_str() {
        "build" => build(args),
        "merge" => merge(args),
        "query" => query(args),
        "verify" => verify(args),
        "hash" => {
            let pw = args.first().ok_or("hash needs a password argument")?;
            println!("{}", sha1::to_hex(&sha1::password_digest(pw)));
            Ok(())
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("digest_tool: {message}");
            ExitCode::FAILURE
        }
    }
}

// Referenced so the error type stays nameable from the binary even if the
// API above changes shape; also keeps `StoreError` in the public surface.
#[allow(dead_code)]
fn _assert_error_is_std(e: StoreError) -> Box<dyn std::error::Error> {
    Box::new(e)
}
