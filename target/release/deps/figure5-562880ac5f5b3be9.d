/root/repo/target/release/deps/figure5-562880ac5f5b3be9.d: crates/bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-562880ac5f5b3be9: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
