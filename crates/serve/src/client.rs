//! A minimal blocking HTTP/1.1 client for loopback use.
//!
//! The conformance tests, the load generator and the serve example all
//! need the same few lines of "open a socket, write a request, parse a
//! response" — this module keeps them in one place. It is intentionally
//! not a general HTTP client: one host, `Content-Length` framing only,
//! keep-alive by default.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code plus body bytes.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (per `Content-Length`).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy; serving responses are always UTF-8).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the server.
pub struct Connection {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Connection {
    /// Connects to `addr` with `timeout` applied to connect and reads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn open(addr: SocketAddr, timeout: Duration) -> std::io::Result<Connection> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection { reader, stream })
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; malformed responses surface as
    /// `InvalidData`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        self.send(method, path, body)?;
        self.read_response()
    }

    /// Writes one request without waiting for the response (the pipelining
    /// half; pair with [`read_response`](Self::read_response)).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) -> std::io::Result<()> {
        let body = body.unwrap_or("");
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nhost: loopback\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        )?;
        self.stream.flush()
    }

    /// Reads one response off the connection.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; malformed responses surface as
    /// `InvalidData`.
    pub fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a response",
            ));
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("truncated response headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("malformed content-length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse { status, body })
    }

    /// The raw stream (for tests that want to write split/partial bytes).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// One-shot convenience: open, request, close.
///
/// # Errors
///
/// Propagates socket errors.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    Connection::open(addr, Duration::from_secs(30))?.request(method, path, body)
}

/// Retry policy for [`request_with_retry`]: bounded attempts with jittered
/// exponential backoff. The jitter is seeded, so a test run's retry
/// schedule is reproducible; vary `seed` across client threads so a shed
/// burst does not come back as a synchronized retry stampede.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retrying.
    pub attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry number `retry` (0-based): the
    /// doubled-and-capped base, scaled by a factor in `[0.5, 1.5)` drawn
    /// from a SplitMix64 stream over `(seed, retry)`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_backoff);
        let mut x = self
            .seed
            .wrapping_add(u64::from(retry).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let jitter = 0.5 + (x >> 11) as f64 / (1u64 << 53) as f64; // [0.5, 1.5)
        exp.mul_f64(jitter)
    }
}

/// One-shot request with bounded, jittered-backoff retries on connect/send
/// failures and on 503 (shed) responses — the polite way to talk to a
/// server that sheds load instead of buffering it.
///
/// **Only use for idempotent requests.** A retried request may execute
/// twice server-side; every endpoint this crate serves is read-only or
/// idempotent except `/admin/shutdown` (which is idempotent too), but the
/// caller owns that judgment for anything else.
///
/// # Errors
///
/// The last I/O error once attempts are exhausted. A final 503 after
/// exhausting retries is returned as a normal response, not an error —
/// the server answered; it just couldn't take the work.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
) -> std::io::Result<ClientResponse> {
    let attempts = policy.attempts.max(1);
    let mut last_err: Option<std::io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(policy.backoff(attempt - 1));
        }
        // A fresh connection per attempt: a failed send may have poisoned
        // the previous one, and a shedding server closed it anyway.
        match request(addr, method, path, body) {
            Ok(response) if response.status == 503 && attempt + 1 < attempts => {
                last_err = None;
                continue;
            }
            Ok(response) => return Ok(response),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err
        .unwrap_or_else(|| std::io::Error::other("retries exhausted without a final error")))
}
