//! Regenerates Figure 4: marginal improvement vs training-set size.

use passflow_bench::{emit, prepare, scale_from_env};
use passflow_eval::figures;

fn main() -> passflow_core::Result<()> {
    let workbench = prepare(scale_from_env())?;
    // Training-set sizes mirroring the paper's sweep (50K baseline up to the
    // full subsample), scaled to the workbench's training split.
    let full = workbench.split.train.len();
    let sizes = vec![full / 6, full / 3, (2 * full) / 3, full];
    let budget = workbench.scale.max_budget().clamp(1_000, 10_000);
    let table = figures::figure4(&workbench, &sizes, budget)?;
    emit(&table, "figure4");
    Ok(())
}
