//! Context Wasserstein autoencoder (the CWAE stand-in, Section VI-C).
//!
//! Pasquini et al. [33] train a Wasserstein autoencoder as a *context*
//! autoencoder: the encoder sees a corrupted password (characters dropped
//! with probability `ε / |x|`) and the decoder must reconstruct the original,
//! which regularizes the latent space. Sampling draws latent points from the
//! prior and decodes them. Unlike a flow, the latent dimensionality is a free
//! hyper-parameter (the paper uses 128 and discusses how this affects unique
//! sample counts versus PassFlow's data-bound 10 dimensions).
//!
//! The Wasserstein regularizer is implemented as moment matching between the
//! batch of encoded latents and the Gaussian prior — the "moment matching
//! regularization" variant named in the paper.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use passflow_nn::rng as nnrng;
use passflow_nn::{
    Activation, ActivationKind, Adam, Linear, Module, Optimizer, Sequential, Tape, Tensor,
};
use passflow_passwords::PasswordEncoder;

use passflow_core::{EpochDriver, Guesser, LoopControl, Schedule, StepCtx, TrainLoop};

/// Hyper-parameters of the CWAE baseline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CwaeConfig {
    /// Dimensionality of the latent space (128 in Pasquini et al.; smaller
    /// by default here to match the reproduction's CPU scale).
    pub latent_dim: usize,
    /// Hidden width of encoder and decoder.
    pub hidden_size: usize,
    /// Number of training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Expected number of characters dropped from each password to form the
    /// context input (the ε of Pasquini et al.; dropout probability is
    /// `ε / |x|`).
    pub context_epsilon: f32,
    /// Weight of the latent moment-matching regularizer.
    pub regularization: f32,
    /// RNG seed.
    pub seed: u64,
}

impl CwaeConfig {
    /// A reduced configuration for CPU-scale harness runs.
    pub fn evaluation() -> Self {
        CwaeConfig {
            latent_dim: 32,
            hidden_size: 64,
            epochs: 25,
            batch_size: 128,
            learning_rate: 1e-3,
            context_epsilon: 2.0,
            regularization: 0.5,
            seed: 0,
        }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny() -> Self {
        CwaeConfig {
            latent_dim: 16,
            hidden_size: 32,
            epochs: 6,
            batch_size: 64,
            learning_rate: 2e-3,
            context_epsilon: 1.0,
            regularization: 0.5,
            seed: 0,
        }
    }

    /// Sets the number of epochs (builder style).
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the latent dimensionality (builder style).
    #[must_use]
    pub fn with_latent_dim(mut self, latent_dim: usize) -> Self {
        self.latent_dim = latent_dim;
        self
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for CwaeConfig {
    fn default() -> Self {
        Self::evaluation()
    }
}

/// A trained context Wasserstein autoencoder.
pub struct Cwae {
    config: CwaeConfig,
    encoder_net: Sequential,
    decoder_net: Sequential,
    password_encoder: PasswordEncoder,
    /// Mean total loss per epoch, recorded during training.
    loss_history: Vec<f32>,
}

impl std::fmt::Debug for Cwae {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Cwae(latent_dim={}, hidden={}, epochs={})",
            self.config.latent_dim, self.config.hidden_size, self.config.epochs
        )
    }
}

fn build_mlp<R: Rng + ?Sized>(
    in_dim: usize,
    hidden: usize,
    out_dim: usize,
    sigmoid_out: bool,
    rng: &mut R,
) -> Sequential {
    let net = Sequential::new()
        .push(Linear::new_relu(in_dim, hidden, rng))
        .push(Activation::new(ActivationKind::Relu))
        .push(Linear::new_relu(hidden, hidden, rng))
        .push(Activation::new(ActivationKind::Relu))
        .push(Linear::new(hidden, out_dim, rng));
    if sigmoid_out {
        net.push(Activation::new(ActivationKind::Sigmoid))
    } else {
        net
    }
}

/// The CWAE's [`EpochDriver`] for the shared [`TrainLoop`]: one batch is a
/// corrupt→encode→decode→reconstruct step on a random row sample.
struct CwaeDriver<'a> {
    config: &'a CwaeConfig,
    data: &'a Tensor,
    encoder_net: &'a Sequential,
    decoder_net: &'a Sequential,
    optimizer: Adam,
    parameters: Vec<passflow_nn::Parameter>,
    rng: rand::rngs::StdRng,
    loss_history: Vec<f32>,
}

impl EpochDriver for CwaeDriver<'_> {
    type Error = std::convert::Infallible;

    fn on_batch(&mut self, ctx: &StepCtx) -> Result<f32, Self::Error> {
        let config = self.config;
        let indices: Vec<usize> = (0..config.batch_size)
            .map(|_| self.rng.gen_range(0..self.data.rows()))
            .collect();
        let clean = self.data.select_rows(&indices);
        let corrupted = corrupt_context(&clean, config.context_epsilon, &mut self.rng);

        let tape = Tape::new();
        let latent = self.encoder_net.forward(&tape, &tape.constant(corrupted));
        let reconstruction = self.decoder_net.forward(&tape, &latent);
        let target = tape.constant(clean);

        // Reconstruction loss + latent moment matching to N(0, I).
        let recon = reconstruction.sub(&target).square().mean();
        let latent_mean = latent.mean();
        let latent_second_moment = latent.square().mean();
        let reg = latent_mean
            .square()
            .add(&latent_second_moment.add_scalar(-1.0).square())
            .scale(config.regularization);
        let loss = recon.add(&reg);
        let loss_value = loss.value().get(0, 0);
        loss.backward();
        self.optimizer.set_learning_rate(ctx.lr);
        self.optimizer.step(&self.parameters);
        Ok(loss_value)
    }

    fn on_epoch_end(&mut self, _epoch: usize, mean_loss: f32) -> Result<LoopControl, Self::Error> {
        self.loss_history.push(mean_loss);
        Ok(LoopControl::Continue)
    }
}

impl Cwae {
    /// Trains the autoencoder on a password corpus.
    ///
    /// # Panics
    ///
    /// Panics if no training password can be encoded.
    pub fn train(
        passwords: &[String],
        password_encoder: PasswordEncoder,
        config: CwaeConfig,
    ) -> Self {
        let (features, _) = password_encoder.encode_batch(passwords);
        assert!(
            !features.is_empty(),
            "no training password could be encoded"
        );
        let data = Tensor::from_rows(&features);
        let dim = password_encoder.max_len();
        let mut rng = nnrng::seeded(config.seed);

        let encoder_net = build_mlp(dim, config.hidden_size, config.latent_dim, false, &mut rng);
        let decoder_net = build_mlp(config.latent_dim, config.hidden_size, dim, true, &mut rng);
        let mut parameters = encoder_net.parameters();
        parameters.extend(decoder_net.parameters());

        let num_batches = data.rows().div_ceil(config.batch_size);
        let mut driver = CwaeDriver {
            config: &config,
            data: &data,
            encoder_net: &encoder_net,
            decoder_net: &decoder_net,
            optimizer: Adam::new(config.learning_rate),
            parameters,
            rng,
            loss_history: Vec::with_capacity(config.epochs),
        };
        TrainLoop::new(
            config.epochs,
            num_batches,
            config.learning_rate,
            Schedule::Constant,
        )
        .run(0, &mut driver)
        .expect("CWAE training is infallible");
        let loss_history = driver.loss_history;

        Cwae {
            config,
            encoder_net,
            decoder_net,
            password_encoder,
            loss_history,
        }
    }

    /// The training configuration.
    pub fn config(&self) -> &CwaeConfig {
        &self.config
    }

    /// Per-epoch loss trajectory recorded during training.
    pub fn loss_history(&self) -> &[f32] {
        &self.loss_history
    }

    /// Encodes a password into its latent representation, or `None` if the
    /// password cannot be encoded.
    pub fn latent_of(&self, password: &str) -> Option<Vec<f32>> {
        let features = self.password_encoder.encode(password)?;
        let x = Tensor::from_rows(&[features]);
        Some(self.encoder_net.forward_tensor(&x).row_slice(0).to_vec())
    }

    /// Reconstructs a password through the autoencoder (encode then decode).
    pub fn reconstruct(&self, password: &str) -> Option<String> {
        let features = self.password_encoder.encode(password)?;
        let x = Tensor::from_rows(&[features]);
        let z = self.encoder_net.forward_tensor(&x);
        let out = self.decoder_net.forward_tensor(&z);
        Some(self.password_encoder.decode(out.row_slice(0)))
    }

    /// Generates `n` passwords by sampling the Gaussian prior and decoding.
    pub fn sample_passwords<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<String> {
        let z = Tensor::randn(n, self.config.latent_dim, rng);
        let features = self.decoder_net.forward_tensor(&z);
        (0..features.rows())
            .map(|i| self.password_encoder.decode(features.row_slice(i)))
            .collect()
    }
}

impl Guesser for Cwae {
    fn name(&self) -> &str {
        "CWAE"
    }

    fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
        self.sample_passwords(n, rng)
    }
}

/// Drops characters from each encoded password with probability
/// `ε / length`, producing the "context" input of Pasquini et al. A dropped
/// position is set to the padding value 0.
fn corrupt_context<R: Rng + ?Sized>(batch: &Tensor, epsilon: f32, rng: &mut R) -> Tensor {
    let mut out = batch.clone();
    for i in 0..batch.rows() {
        let length = batch
            .row_slice(i)
            .iter()
            .filter(|&&v| v > 0.0)
            .count()
            .max(1);
        let drop_prob = (epsilon / length as f32).clamp(0.0, 0.9);
        for j in 0..batch.cols() {
            if batch.get(i, j) > 0.0 && rng.gen::<f32>() < drop_prob {
                out.set(i, j, 0.0);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};

    fn corpus(n: usize) -> Vec<String> {
        SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(n))
            .generate(67)
            .into_passwords()
    }

    fn trained() -> Cwae {
        Cwae::train(
            &corpus(1_500),
            PasswordEncoder::default(),
            CwaeConfig::tiny(),
        )
    }

    #[test]
    fn training_reduces_the_loss() {
        let cwae = trained();
        let history = cwae.loss_history();
        assert_eq!(history.len(), 6);
        assert!(history.iter().all(|v| v.is_finite()));
        assert!(
            history.last().unwrap() < history.first().unwrap(),
            "loss did not decrease: {history:?}"
        );
    }

    #[test]
    fn corruption_only_drops_filled_positions() {
        let encoder = PasswordEncoder::default();
        let x = Tensor::from_rows(&[encoder.encode("abcdef").unwrap()]);
        let mut rng = nnrng::seeded(1);
        let corrupted = corrupt_context(&x, 3.0, &mut rng);
        for j in 0..x.cols() {
            if x.get(0, j) == 0.0 {
                assert_eq!(corrupted.get(0, j), 0.0);
            } else {
                assert!(corrupted.get(0, j) == 0.0 || corrupted.get(0, j) == x.get(0, j));
            }
        }
        // With ε=3 on a 6-character password roughly half the characters
        // drop; over many draws at least one drop must occur.
        let mut any_dropped = false;
        for _ in 0..20 {
            let c = corrupt_context(&x, 3.0, &mut rng);
            if (0..x.cols()).any(|j| c.get(0, j) != x.get(0, j)) {
                any_dropped = true;
                break;
            }
        }
        assert!(any_dropped);
    }

    #[test]
    fn reconstruction_is_close_to_the_input_after_training() {
        let cwae = trained();
        // The autoencoder should at least preserve password length
        // approximately for common training-like passwords.
        let reconstructed = cwae.reconstruct("jessica1").unwrap();
        assert!(!reconstructed.is_empty());
        assert!(reconstructed.chars().count() <= 10);
        assert!(cwae.reconstruct("waytoolongpassword").is_none());
    }

    #[test]
    fn latent_dimension_is_configurable_unlike_a_flow() {
        let cwae = Cwae::train(
            &corpus(400),
            PasswordEncoder::default(),
            CwaeConfig::tiny().with_latent_dim(24).with_epochs(1),
        );
        assert_eq!(cwae.latent_of("monkey7").unwrap().len(), 24);
        assert_eq!(cwae.config().latent_dim, 24);
    }

    #[test]
    fn samples_are_valid_and_diverse() {
        let cwae = trained();
        let mut rng = nnrng::seeded(2);
        let guesses = cwae.sample_passwords(200, &mut rng);
        assert_eq!(guesses.len(), 200);
        for g in &guesses {
            assert!(g.chars().count() <= 10);
        }
        let unique: std::collections::HashSet<&String> = guesses.iter().collect();
        assert!(unique.len() > 5, "only {} unique samples", unique.len());
    }

    #[test]
    fn guesser_trait_and_debug_work() {
        let cwae = trained();
        assert_eq!(cwae.name(), "CWAE");
        let a = cwae.generate_batch(10, &mut nnrng::seeded(3));
        let b = cwae.generate_batch(10, &mut nnrng::seeded(3));
        assert_eq!(a, b);
        assert!(format!("{cwae:?}").contains("Cwae"));
    }

    #[test]
    #[should_panic(expected = "no training password could be encoded")]
    fn unencodable_corpus_rejected() {
        let _ = Cwae::train(
            &["definitely_way_too_long_for_the_encoder".to_string()],
            PasswordEncoder::default(),
            CwaeConfig::tiny(),
        );
    }
}
