/root/repo/target/debug/deps/passflow_eval-cacdc96f94d5b279.d: crates/eval/src/lib.rs crates/eval/src/attack.rs crates/eval/src/figures.rs crates/eval/src/projection.rs crates/eval/src/report.rs crates/eval/src/scale.rs crates/eval/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libpassflow_eval-cacdc96f94d5b279.rmeta: crates/eval/src/lib.rs crates/eval/src/attack.rs crates/eval/src/figures.rs crates/eval/src/projection.rs crates/eval/src/report.rs crates/eval/src/scale.rs crates/eval/src/tables.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/attack.rs:
crates/eval/src/figures.rs:
crates/eval/src/projection.rs:
crates/eval/src/report.rs:
crates/eval/src/scale.rs:
crates/eval/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
