//! A full guessing attack comparing the paper's three strategies —
//! static sampling, Dynamic Sampling with penalization, and Dynamic
//! Sampling + data-space Gaussian smoothing — against the same test set
//! (the Table II / Table III experiment in miniature).
//!
//! ```text
//! cargo run --release --example dynamic_attack
//! ```

use passflow::{
    train, Attack, CorpusConfig, DynamicParams, FlowConfig, GaussianSmoothing, GuessingStrategy,
    PassFlow, SyntheticCorpusGenerator, TrainConfig,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(40_000)).generate(5);
    let split = corpus.paper_split(0.8, 8_000, 5);
    let targets = split.test_set();
    println!(
        "training on {} passwords, attacking {} unique test passwords\n",
        split.train.len(),
        targets.len()
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let flow = PassFlow::new(
        FlowConfig::evaluation()
            .with_coupling_layers(6)
            .with_hidden_size(32),
        &mut rng,
    )?;
    train(
        &flow,
        &split.train,
        &TrainConfig::evaluation().with_epochs(8),
    )?;

    let budget = 50_000u64;
    let params = DynamicParams::paper_defaults(budget);
    let strategies = vec![
        GuessingStrategy::Static,
        GuessingStrategy::Dynamic(params),
        GuessingStrategy::DynamicWithSmoothing {
            params,
            smoothing: GaussianSmoothing::default(),
        },
    ];

    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "strategy", "guesses", "unique", "matched", "% matched"
    );
    for strategy in strategies {
        // One engine drives all three strategies; static generation fans out
        // across shards, dynamic generation parallelizes between feedback
        // synchronizations (sync_every batches share one prior snapshot).
        let outcome = Attack::new(&targets)
            .budget(budget)
            .batch_size(2_048)
            .strategy(strategy)
            .seed(9)
            .shards(4)
            .sync_every(2)
            .nonmatched_samples(0)
            .run(&flow)?;
        let report = outcome.final_report();
        assert_eq!(
            report.guesses, budget,
            "{}: full budget spent",
            outcome.strategy
        );
        assert!(report.unique > 0, "{}: no unique guesses", outcome.strategy);
        assert_eq!(
            report.matched as usize,
            outcome.matched_passwords.len(),
            "{}: matched count and password list must agree",
            outcome.strategy
        );
        assert!(
            report.matched <= targets.len() as u64,
            "{}: matched more than the test set holds",
            outcome.strategy
        );
        println!(
            "{:<22} {:>10} {:>10} {:>10} {:>9.2}%",
            outcome.strategy, report.guesses, report.unique, report.matched, report.matched_percent
        );
    }

    println!(
        "\nexpected ordering (as in the paper): Dynamic+GS >= Dynamic >= Static, with\n\
         dynamic sampling trading unique guesses for matches and Gaussian smoothing\n\
         recovering the lost uniqueness."
    );
    Ok(())
}
