//! Captures build provenance for the benchmark JSON header: the exact
//! rustc that compiled the benches and the RUSTFLAGS in effect (which is
//! where `-C target-cpu=...` lives in this repo's `.cargo/config.toml`).
//! Throughput numbers without compiler provenance are not comparable
//! across checkouts.

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = std::process::Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=PASSFLOW_BENCH_RUSTC={version}");

    // Cargo passes the effective RUSTFLAGS to build scripts with a unit
    // separator between flags.
    let rustflags = std::env::var("CARGO_ENCODED_RUSTFLAGS")
        .unwrap_or_default()
        .replace('\u{1f}', " ");
    println!("cargo:rustc-env=PASSFLOW_BENCH_RUSTFLAGS={rustflags}");
    println!("cargo:rerun-if-env-changed=CARGO_ENCODED_RUSTFLAGS");
    println!("cargo:rerun-if-env-changed=RUSTC");
}
