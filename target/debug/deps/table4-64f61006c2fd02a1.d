/root/repo/target/debug/deps/table4-64f61006c2fd02a1.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-64f61006c2fd02a1.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
