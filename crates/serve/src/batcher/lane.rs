//! Lane machinery for the sharded batcher: per-lane bounded queues,
//! round-robin dispatch with submit-side failover, and consumer-side work
//! stealing.
//!
//! Each lane owns a bounded `VecDeque` guarded by a mutex + condvar pair
//! (std `mpsc` receivers are single-consumer, so a channel cannot be stolen
//! from). The locking discipline is simple and deadlock-free by
//! construction: **no thread ever holds one lane's queue lock while
//! acquiring another's** — submit, steal and rescue all lock exactly one
//! queue at a time.
//!
//! Invariants the suite in `tests/lanes.rs` leans on:
//!
//! * **Dispatch**: `submit` round-robins over lanes and fails over to any
//!   other *alive* lane with room before reporting `Overloaded` — a full
//!   lane sheds only when every lane is full.
//! * **Stealing**: a lane that has drained its own queue mid-tick pops from
//!   the *front* of its neighbors' queues (FIFO fairness) while its tick has
//!   row budget left, so one hot lane's overflow is absorbed before any 503.
//! * **Bit-exactness**: stealing only changes *which* lane scores a job,
//!   never how. Fused kernels are row-independent, so every score is
//!   bit-identical at any lane count.
//! * **Liveness**: a lane that dies (panic, or the chaos kill hook) flips
//!   `alive` false via its guard and re-dispatches its queued jobs to
//!   surviving lanes — no client hangs on a dead lane's reply channel.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use passflow_core::FlowWorkspace;
use passflow_nn::ThreadPool;

use super::{expire_jobs, score_tick, BatcherConfig, EnqueueError, ScoreJob};
use crate::metrics::Metrics;

/// How long an idle lane sleeps between steal scans. Submits to this lane
/// wake it immediately; the timeout only bounds how long overflow can sit
/// in a *sibling's* queue while this lane is idle.
const IDLE_SLICE: Duration = Duration::from_millis(25);

/// Condvar slice while a tick waits for stragglers: short, so a waiting
/// tick re-scans its siblings (the steal path) many times per `max_wait`.
const STRAGGLER_SLICE: Duration = Duration::from_micros(500);

/// One batcher lane: a bounded job queue plus its wake/liveness state.
struct Lane {
    queue: Mutex<VecDeque<ScoreJob>>,
    ready: Condvar,
    alive: AtomicBool,
    /// Chaos hook: when set, the lane panics at its next wakeup.
    kill: AtomicBool,
    /// Jobs this lane stole from siblings (mirrors the metrics counter).
    steals: AtomicU64,
}

/// The shared lane array: dispatch state plus the stop flag.
pub(crate) struct LaneSet {
    lanes: Vec<Lane>,
    /// Per-lane queue bound; enqueueing beyond it fails over, then sheds.
    capacity: usize,
    /// Round-robin dispatch cursor.
    next: AtomicUsize,
    stop: AtomicBool,
    metrics: Arc<Metrics>,
}

impl LaneSet {
    pub(crate) fn new(lanes: usize, capacity: usize, metrics: Arc<Metrics>) -> LaneSet {
        LaneSet {
            lanes: (0..lanes.max(1))
                .map(|_| Lane {
                    queue: Mutex::new(VecDeque::new()),
                    ready: Condvar::new(),
                    alive: AtomicBool::new(true),
                    kill: AtomicBool::new(false),
                    steals: AtomicU64::new(0),
                })
                .collect(),
            capacity: capacity.max(1),
            next: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            metrics,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.lanes.len()
    }

    pub(crate) fn lane_alive(&self, idx: usize) -> bool {
        self.lanes
            .get(idx)
            .is_some_and(|l| l.alive.load(Ordering::SeqCst))
    }

    pub(crate) fn alive_lanes(&self) -> usize {
        self.lanes
            .iter()
            .filter(|l| l.alive.load(Ordering::SeqCst))
            .count()
    }

    pub(crate) fn lane_steals(&self, idx: usize) -> u64 {
        self.lanes
            .get(idx)
            .map_or(0, |l| l.steals.load(Ordering::Relaxed))
    }

    pub(crate) fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Sets the stop flag and wakes every lane (graceful shutdown).
    pub(crate) fn begin_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for lane in &self.lanes {
            lane.ready.notify_all();
        }
    }

    /// Chaos hook: arms the kill flag so `idx` panics at its next wakeup.
    pub(crate) fn request_kill(&self, idx: usize) {
        if let Some(lane) = self.lanes.get(idx) {
            lane.kill.store(true, Ordering::SeqCst);
            lane.ready.notify_all();
        }
    }

    /// Round-robin dispatch with failover: the cursor picks a home lane,
    /// and a full (or dead) home fails over to the next alive lane with
    /// room. `Overloaded` means *every* alive lane is full.
    pub(crate) fn submit(&self, job: ScoreJob) -> Result<(), EnqueueError> {
        if self.stopped() {
            return Err(EnqueueError::ShuttingDown);
        }
        let n = self.lanes.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed) % n;
        let mut any_alive = false;
        for offset in 0..n {
            let idx = (start + offset) % n;
            let lane = &self.lanes[idx];
            if !lane.alive.load(Ordering::SeqCst) {
                continue;
            }
            any_alive = true;
            let mut queue = lane.queue.lock();
            if queue.len() < self.capacity {
                queue.push_back(job);
                self.metrics.set_lane_depth(idx, queue.len() as u64);
                drop(queue);
                lane.ready.notify_one();
                return Ok(());
            }
        }
        if any_alive {
            Err(EnqueueError::Overloaded)
        } else {
            Err(EnqueueError::ShuttingDown)
        }
    }

    /// Pops this lane's own queue.
    fn pop_own(&self, idx: usize) -> Option<ScoreJob> {
        let mut queue = self.lanes[idx].queue.lock();
        let job = queue.pop_front();
        if job.is_some() {
            self.metrics.set_lane_depth(idx, queue.len() as u64);
        }
        job
    }

    /// Steals the oldest queued job from the first non-empty sibling.
    /// Dead siblings are fair game too — stealing is also how stranded
    /// work gets rescued between a lane's death and its guard running.
    fn steal(&self, idx: usize) -> Option<ScoreJob> {
        let n = self.lanes.len();
        for offset in 1..n {
            let victim_idx = (idx + offset) % n;
            let mut queue = self.lanes[victim_idx].queue.lock();
            if let Some(job) = queue.pop_front() {
                self.metrics.set_lane_depth(victim_idx, queue.len() as u64);
                drop(queue);
                self.lanes[idx].steals.fetch_add(1, Ordering::Relaxed);
                self.metrics.record_lane_steal(idx);
                return Some(job);
            }
        }
        None
    }

    /// Parks `idx` on its condvar for at most `timeout`, re-checking the
    /// queue under the lock first so a submit between "pop returned None"
    /// and this wait can never be missed.
    fn wait_ready(&self, idx: usize, timeout: Duration) {
        let lane = &self.lanes[idx];
        let queue = lane.queue.lock();
        if queue.is_empty() && !self.stopped() && !lane.kill.load(Ordering::SeqCst) {
            let _ = lane.ready.wait_timeout(queue, timeout);
        }
    }

    /// Fires the chaos kill if armed (called with no locks held, so the
    /// unwind can never poison a queue mid-update).
    fn check_kill(&self, idx: usize) {
        if self.lanes[idx].kill.load(Ordering::SeqCst) {
            panic!("chaos hook: lane {idx} killed");
        }
    }

    /// Marks `idx` dead and, if it died abnormally, re-dispatches its
    /// queued jobs to surviving lanes so no client hangs on a reply that
    /// will never come. Called from the lane guard however the thread
    /// exits; on graceful shutdown the lane drained its own queue already.
    pub(crate) fn retire(&self, idx: usize, panicked: bool) {
        self.lanes[idx].alive.store(false, Ordering::SeqCst);
        if panicked {
            let orphans: Vec<ScoreJob> = {
                let mut queue = self.lanes[idx].queue.lock();
                queue.drain(..).collect()
            };
            self.metrics.set_lane_depth(idx, 0);
            for job in orphans {
                self.adopt(job);
            }
        }
        // Wake everyone so dispatch and healthz observe the death promptly.
        for lane in &self.lanes {
            lane.ready.notify_all();
        }
    }

    /// Hands a rescued job to any surviving lane, *ignoring* the queue
    /// bound — a survivor absorbing a dead sibling's overflow beats failing
    /// requests the server already accepted. Only when no lane is left does
    /// the job drop (its reply channel closes and the handler answers 500).
    fn adopt(&self, job: ScoreJob) {
        let n = self.lanes.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed) % n;
        for offset in 0..n {
            let idx = (start + offset) % n;
            let lane = &self.lanes[idx];
            if !lane.alive.load(Ordering::SeqCst) {
                continue;
            }
            let mut queue = lane.queue.lock();
            queue.push_back(job);
            self.metrics.set_lane_depth(idx, queue.len() as u64);
            drop(queue);
            lane.ready.notify_one();
            return;
        }
    }
}

/// One lane's tick loop. Identical scoring semantics to the single-lane
/// batcher — block for a first job, adaptively drain up to `max_batch`
/// rows, expire, score, reply — plus stealing: whenever this lane's own
/// queue runs dry mid-tick, it drains siblings' overflow into the same
/// tick. `pool` is the GEMM pool shared by every lane (the
/// `lanes × threads ≤ host` discipline); `None` keeps serial kernels.
pub(crate) fn lane_loop(
    set: &Arc<LaneSet>,
    idx: usize,
    config: &BatcherConfig,
    metrics: &Metrics,
    pool: Option<Arc<ThreadPool>>,
) {
    let max_batch = config.max_batch.max(1);
    let mut ws = FlowWorkspace::new();
    ws.set_thread_pool(pool);
    let mut scores: Vec<Option<f64>> = Vec::new();
    // Whether the previous tick was full — the saturation signal driving
    // the adaptive straggler wait.
    let mut saturated = false;

    'ticks: loop {
        // 1. Block for the first job of the tick (stealing counts).
        let first = loop {
            set.check_kill(idx);
            if let Some(job) = set.pop_own(idx).or_else(|| set.steal(idx)) {
                break job;
            }
            if set.stopped() {
                break 'ticks;
            }
            set.wait_ready(idx, IDLE_SLICE);
        };
        let mut jobs = vec![first];
        let mut rows: usize = jobs[0].passwords.len();

        // 2. Drain own queue + steal overflow up to max_batch rows,
        // waiting for stragglers only while unsaturated.
        let deadline = Instant::now() + config.max_wait;
        while rows < max_batch {
            if let Some(job) = set.pop_own(idx).or_else(|| set.steal(idx)) {
                rows += job.passwords.len();
                jobs.push(job);
                continue;
            }
            if saturated || set.stopped() {
                break;
            }
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            set.wait_ready(idx, remaining.min(STRAGGLER_SLICE));
        }
        // Saturation is a queue-pressure signal, so expired jobs count
        // toward it — they occupied queue slots all the same.
        saturated = rows >= max_batch;
        let live = expire_jobs(jobs, metrics);
        if live.is_empty() {
            continue;
        }
        let live_rows: usize = live.iter().map(|j| j.passwords.len()).sum();
        metrics.record_batch(live_rows);
        metrics.record_lane_batch(idx, live_rows);
        score_tick(&live, &mut ws, &mut scores);
    }

    // Graceful drain: score anything still queued on *this* lane, one
    // final oversized tick per model (each lane drains its own queue;
    // deadlines still apply).
    let mut pending = Vec::new();
    while let Some(job) = set.pop_own(idx) {
        pending.push(job);
    }
    let pending = expire_jobs(pending, metrics);
    if !pending.is_empty() {
        let rows: usize = pending.iter().map(|j| j.passwords.len()).sum();
        metrics.record_batch(rows);
        metrics.record_lane_batch(idx, rows);
        score_tick(&pending, &mut ws, &mut scores);
    }
}
