//! # passflow-store
//!
//! The packed sorted digest store of the PassFlow reproduction: a std-only
//! `PFDIGEST v1` binary artifact holding sorted, prefix-compressed,
//! truncated SHA-1 digests with optional breach counts, indexed for O(1)
//! seeks to any digest-prefix range.
//!
//! The same artifact serves two workloads (DESIGN.md, "Breach screening
//! store"):
//!
//! * **HIBP-style breach/blocklist screening** — `passflow-serve` answers
//!   `GET /v1/range/{prefix5}` (k-anonymity: the client reveals 20 bits of
//!   `SHA1(password)` and matches the suffix locally) and
//!   `POST /v1/screen` (model strength + breach membership in one
//!   response) straight off an open [`DigestStore`];
//! * **mergeable guess archives** — attack shards persist their dedup'd
//!   guess streams as `PFGUESS v1` sorted archives ([`GuessArchiveBuilder`],
//!   same external-merge-sort skeleton, keyed by raw guess bytes instead of
//!   digests) and later union shard outputs with [`merge_archives`],
//!   dedup'ing guesses and summing emission counts across runs. The
//!   headerless form of the same codec ([`GuessStreamWriter`]) carries the
//!   dedup-set state inside `PFATTACK v1` attack checkpoints.
//!
//! Everything is deterministic at the byte level: building in one pass and
//! merging N shard builds of the same records produce identical files, so
//! artifacts can be content-addressed and diffed.
//!
//! ```rust
//! use passflow_store::{DigestConfig, DigestStore, DigestStoreBuilder};
//!
//! let dir = std::env::temp_dir();
//! let path = dir.join(format!("pfdigest-doc-{}.pfd", std::process::id()));
//! let mut builder = DigestStoreBuilder::new(DigestConfig::default());
//! builder.add_password("password123")?;
//! builder.add_password("password123")?;
//! builder.add_password("letmein")?;
//! builder.finish(&path)?;
//!
//! let store = DigestStore::open(&path)?;
//! assert_eq!(store.contains_password("password123")?, Some(2));
//! assert_eq!(store.contains_password("correct horse")?, None);
//! // k-anonymity: SHA1("password123") starts with CBFDA…
//! assert!(!store.range("CBFDA")?.is_empty());
//! std::fs::remove_file(&path)?;
//! # Ok::<(), passflow_store::StoreError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod format;
pub mod guess;
pub mod io;
pub mod merge;
pub mod sha1;

pub use builder::{DigestStoreBuilder, DEFAULT_MEMORY_RECORDS};
pub use format::{
    DigestConfig, DigestStats, DigestStore, RangeEntry, RawDigest, RecordCursor, Result,
    StoreError, VerifyReport,
};
pub use guess::{
    merge_archives, GuessArchive, GuessArchiveBuilder, GuessArchiveWriter, GuessConfig,
    GuessCursor, GuessStats, GuessStreamReader, GuessStreamWriter, MAX_GUESS_LEN,
};
pub use io::{FaultInjector, FaultPlan, FaultyIo, FaultyWrite, FileIo, RetryPolicy, StoreIo};
pub use merge::merge_artifacts;
