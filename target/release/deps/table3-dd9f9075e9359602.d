/root/repo/target/release/deps/table3-dd9f9075e9359602.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-dd9f9075e9359602: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
