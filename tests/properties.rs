//! Property-style tests of the core invariants, driven by deterministic
//! seeded input sweeps (the build environment cannot fetch `proptest`, so
//! the same randomized coverage is generated with the workspace RNG):
//!
//! * the flow is a bijection: `f⁻¹(f(x)) ≈ x` and `f(f⁻¹(z)) ≈ z` for
//!   arbitrary inputs and randomly initialized parameters,
//! * the change-of-variables bookkeeping is self-consistent,
//! * password encoding round-trips for arbitrary alphabet strings,
//! * masks always cover every position across consecutive layers,
//! * mixture-prior weights stay normalized,
//! * structure templates and statistics behave for arbitrary inputs.

use rand::Rng;

use passflow::nn::rng as nnrng;
use passflow::nn::Tensor;
use passflow::passwords::stats::{structure_template, CorpusStats};
use passflow::{
    Alphabet, DynamicParams, FlowConfig, MaskStrategy, PassFlow, PasswordEncoder, Penalization,
};
use passflow_core::{GaussianMixturePrior, Prior, StandardGaussianPrior};

/// Number of random cases per property (mirrors the old proptest config).
const CASES: u64 = 32;

/// Generates a random password over the default alphabet, length 1..=10.
fn random_password<R: Rng + ?Sized>(rng: &mut R) -> String {
    let alphabet: Vec<char> = Alphabet::default().iter().collect();
    let len = rng.gen_range(1..=10usize);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

fn tiny_flow(seed: u64, layers: usize) -> PassFlow {
    let mut rng = nnrng::seeded(seed);
    PassFlow::new(FlowConfig::tiny().with_coupling_layers(layers), &mut rng).expect("valid config")
}

#[test]
fn encoding_round_trips_for_arbitrary_passwords() {
    let mut rng = nnrng::seeded(1);
    let encoder = PasswordEncoder::default();
    for _ in 0..CASES {
        let password = random_password(&mut rng);
        let features = encoder.encode(&password).expect("encodable");
        assert_eq!(features.len(), encoder.max_len());
        assert!(features.iter().all(|v| (0.0..1.0).contains(v)));
        assert_eq!(encoder.decode(&features), password);
    }
}

#[test]
fn flow_inverts_arbitrary_passwords() {
    let mut rng = nnrng::seeded(2);
    for case in 0..CASES {
        let password = random_password(&mut rng);
        let flow = tiny_flow(case % 8, 4);
        let x = flow.encode_batch(std::slice::from_ref(&password)).unwrap();
        let (z, log_det) = flow.forward(&x);
        assert!(z.is_finite());
        assert!(log_det.is_finite());
        let recovered = flow.inverse(&z);
        assert!(
            recovered.approx_eq(&x, 1e-3),
            "max err {}",
            recovered.sub(&x).abs().max()
        );
        assert_eq!(flow.decode_batch(&recovered), vec![password]);
    }
}

#[test]
fn flow_inverts_arbitrary_latent_points() {
    let mut rng = nnrng::seeded(3);
    for case in 0..CASES {
        let flow = tiny_flow(case % 5, 4);
        let values: Vec<f32> = (0..10).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let z = Tensor::from_rows(&[values]);
        let x = flow.inverse(&z);
        let (z2, _) = flow.forward(&x);
        assert!(z2.approx_eq(&z, 1e-3), "max err {}", z2.sub(&z).abs().max());
    }
}

#[test]
fn log_prob_is_finite_and_consistent() {
    let mut rng = nnrng::seeded(4);
    for case in 0..CASES {
        let password = random_password(&mut rng);
        let flow = tiny_flow(case % 6, 4);
        let lp = flow.log_prob_password(&password).expect("encodable");
        assert!(lp.is_finite());
        // The batched path must agree with the single-password path.
        let x = flow.encode_batch(&[password]).unwrap();
        let batch_lp = flow.log_prob(&x)[0];
        assert!((lp - batch_lp).abs() < 1e-4);
    }
}

#[test]
fn masks_cover_every_position_in_consecutive_layers() {
    let mut rng = nnrng::seeded(5);
    for _ in 0..CASES {
        let dim = rng.gen_range(2usize..16);
        let run = rng.gen_range(1usize..4);
        let layer = rng.gen_range(0usize..8);
        if run >= dim {
            continue;
        }
        for strategy in [MaskStrategy::CharRun(run), MaskStrategy::Horizontal] {
            let a = strategy.mask_for_layer(2 * layer, dim);
            let b = strategy.mask_for_layer(2 * layer + 1, dim);
            for j in 0..dim {
                // Mask values are binary and complementary across the pair.
                assert!(a[j] == 0.0 || a[j] == 1.0);
                assert_eq!(a[j] + b[j], 1.0);
            }
        }
    }
}

#[test]
fn mixture_prior_weights_stay_normalized() {
    let mut rng = nnrng::seeded(6);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..6);
        let centers: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..4).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
            .collect();
        let sigma = rng.gen_range(0.01f32..1.0);
        let mut weights: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0f32..5.0)).collect();
        // Ensure at least one positive weight.
        weights[0] += 1.0;
        let prior = GaussianMixturePrior::new(centers, sigma, weights);
        let total: f32 = prior.weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        // Densities are finite wherever we evaluate them.
        let z = Tensor::zeros(3, 4);
        assert!(prior.log_prob(&z).iter().all(|v| v.is_finite()));
    }
}

#[test]
fn standard_prior_density_decreases_away_from_origin() {
    let mut rng = nnrng::seeded(7);
    for _ in 0..CASES {
        let scale = rng.gen_range(0.1f32..4.0);
        let prior = StandardGaussianPrior::new(6);
        let near = Tensor::zeros(1, 6);
        let far = Tensor::full(1, 6, scale);
        assert!(prior.log_prob(&near)[0] >= prior.log_prob(&far)[0]);
    }
}

#[test]
fn penalization_weight_is_monotone_in_usage() {
    let mut rng = nnrng::seeded(8);
    for _ in 0..CASES {
        let gamma = rng.gen_range(1u32..20);
        let usage = rng.gen_range(0u32..40);
        let step = Penalization::Step { gamma };
        let w_now = step.weight(usage);
        let w_later = step.weight(usage + 1);
        assert!(w_later <= w_now);
        assert!(w_now == 0.0 || w_now == 1.0);
        assert_eq!(Penalization::None.weight(usage), 1.0);
    }
}

#[test]
fn paper_dynamic_params_are_always_valid() {
    let mut rng = nnrng::seeded(9);
    for _ in 0..CASES {
        let budget = rng.gen_range(1u64..1_000_000_000);
        let params = DynamicParams::paper_defaults(budget);
        assert!(params.sigma > 0.0);
        assert!(params.alpha >= 1);
        match params.penalization {
            Penalization::Step { gamma } => assert!(gamma >= 2),
            Penalization::None => panic!("paper defaults always use a step function"),
        }
    }
}

#[test]
fn structure_template_preserves_length_and_classes() {
    let mut rng = nnrng::seeded(10);
    for _ in 0..CASES {
        let password = random_password(&mut rng);
        let template = structure_template(&password);
        assert_eq!(template.chars().count(), password.chars().count());
        assert!(template.chars().all(|c| c == 'L' || c == 'D' || c == 'S'));
    }
}

#[test]
fn corpus_stats_fractions_sum_to_one() {
    let mut rng = nnrng::seeded(11);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..30);
        let passwords: Vec<String> = (0..n).map(|_| random_password(&mut rng)).collect();
        let stats = CorpusStats::compute(passwords.iter().map(String::as_str));
        let total = stats.letter_fraction + stats.digit_fraction + stats.symbol_fraction;
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(stats.count, passwords.len());
        assert!(stats.mean_length >= 1.0 && stats.mean_length <= 10.0);
        // JS divergence with itself is zero.
        assert!(stats.char_js_divergence(&stats).abs() < 1e-12);
    }
}
