//! Regenerates Table V: bounded sampling around the pivot password "jimmy91".

use passflow_bench::{emit, prepare, scale_from_env};
use passflow_eval::tables;

fn main() -> passflow_core::Result<()> {
    let workbench = prepare(scale_from_env())?;
    let table = tables::table5(&workbench, "jimmy91")?;
    emit(&table, "table5");
    Ok(())
}
