//! The [`Guesser`] abstraction every password-guessing model implements.

use rand::RngCore;

use passflow_nn::Tensor;

use crate::flow::PassFlow;

/// A trained password-guessing model that can generate candidate passwords
/// in batches.
///
/// The trait is object-safe, so the evaluation harness can hold a mixed
/// collection of models (`Vec<Box<dyn Guesser>>`) and drive them all through
/// the same [`Attack`](crate::Attack) protocol. `Send + Sync` are
/// supertraits because the engine fans generation out across shard threads.
///
/// Guesses may repeat; deduplication (and the resulting unique counts) is
/// the engine's responsibility, exactly as in the paper's Tables II and III.
pub trait Guesser: Send + Sync {
    /// Human-readable name used as the row label in tables
    /// (e.g. `"PassFlow"`, `"Markov (order 3)"`).
    fn name(&self) -> &str;

    /// Generates `n` password guesses.
    ///
    /// Implementations must draw all randomness from `rng` so the engine's
    /// per-chunk RNG streams keep attacks deterministic and shard-invariant.
    fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String>;

    /// Returns the latent-space view of this guesser, if it has one.
    ///
    /// Strategies that condition the prior on matched guesses (Dynamic
    /// Sampling) or perturb colliding samples (Gaussian smoothing) need the
    /// operations of [`LatentGuesser`]; models without a latent space return
    /// `None` and can only run static strategies.
    fn as_latent(&self) -> Option<&dyn LatentGuesser> {
        None
    }
}

/// Extension trait for guessers backed by an invertible latent-variable
/// model (the flow, but also any future VAE/flow backend).
///
/// Exposing these three operations is enough for the engine to implement
/// Dynamic Sampling with penalization (Algorithm 1) and data-space Gaussian
/// smoothing (Section III-C) *outside* the model: the engine samples the
/// (possibly conditioned) prior itself, maps latents to data space through
/// [`LatentGuesser::latents_to_features`], and decodes / perturbs rows
/// individually.
pub trait LatentGuesser: Guesser {
    /// Dimensionality of the latent space.
    fn latent_dim(&self) -> usize;

    /// Maps a batch of latent rows to data-space feature rows (the flow's
    /// inverse pass).
    fn latents_to_features(&self, z: &Tensor) -> Tensor;

    /// Decodes one data-space feature row into a password guess.
    fn decode_features(&self, features: &[f32]) -> String;
}

impl Guesser for PassFlow {
    fn name(&self) -> &str {
        "PassFlow"
    }

    fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
        self.sample_passwords(n, rng)
    }

    fn as_latent(&self) -> Option<&dyn LatentGuesser> {
        Some(self)
    }
}

impl LatentGuesser for PassFlow {
    fn latent_dim(&self) -> usize {
        self.dim()
    }

    fn latents_to_features(&self, z: &Tensor) -> Tensor {
        self.inverse(z)
    }

    fn decode_features(&self, features: &[f32]) -> String {
        self.encoder().decode(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use passflow_nn::rng as nnrng;

    #[test]
    fn trait_is_object_safe_and_usable_through_a_box() {
        struct Fixed;
        impl Guesser for Fixed {
            fn name(&self) -> &str {
                "fixed"
            }
            fn generate_batch(&self, n: usize, _rng: &mut dyn RngCore) -> Vec<String> {
                vec!["123456".to_string(); n]
            }
        }

        let guessers: Vec<Box<dyn Guesser>> = vec![Box::new(Fixed)];
        let mut rng = nnrng::seeded(1);
        let out = guessers[0].generate_batch(3, &mut rng);
        assert_eq!(out.len(), 3);
        assert_eq!(guessers[0].name(), "fixed");
        assert!(guessers[0].as_latent().is_none());
    }

    #[test]
    fn passflow_exposes_its_latent_space() {
        let mut rng = nnrng::seeded(2);
        let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
        let latent = flow.as_latent().expect("flows have latent access");
        assert_eq!(latent.latent_dim(), flow.dim());

        // Latent round trip matches the flow's own sampling path.
        let z = flow.sample_latent(4, &mut rng);
        let x = latent.latents_to_features(&z);
        let decoded: Vec<String> = (0..4)
            .map(|i| latent.decode_features(x.row_slice(i)))
            .collect();
        assert_eq!(decoded, flow.decode_batch(&x));
    }

    #[test]
    fn generate_batch_matches_static_sampling() {
        let mut rng_a = nnrng::seeded(3);
        let mut rng_b = nnrng::seeded(3);
        let flow = {
            let mut rng = nnrng::seeded(4);
            PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
        };
        assert_eq!(
            Guesser::generate_batch(&flow, 16, &mut rng_a),
            flow.sample_passwords(16, &mut rng_b)
        );
    }
}
