/root/repo/target/release/deps/passflow_core-24a2116fd47a1a83.d: crates/core/src/lib.rs crates/core/src/conditional.rs crates/core/src/config.rs crates/core/src/coupling.rs crates/core/src/engine/mod.rs crates/core/src/engine/attack.rs crates/core/src/engine/guesser.rs crates/core/src/engine/sharded.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/guess.rs crates/core/src/interpolate.rs crates/core/src/mask.rs crates/core/src/persist.rs crates/core/src/prior.rs crates/core/src/sample/mod.rs crates/core/src/sample/dynamic.rs crates/core/src/sample/smoothing.rs crates/core/src/train.rs

/root/repo/target/release/deps/libpassflow_core-24a2116fd47a1a83.rlib: crates/core/src/lib.rs crates/core/src/conditional.rs crates/core/src/config.rs crates/core/src/coupling.rs crates/core/src/engine/mod.rs crates/core/src/engine/attack.rs crates/core/src/engine/guesser.rs crates/core/src/engine/sharded.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/guess.rs crates/core/src/interpolate.rs crates/core/src/mask.rs crates/core/src/persist.rs crates/core/src/prior.rs crates/core/src/sample/mod.rs crates/core/src/sample/dynamic.rs crates/core/src/sample/smoothing.rs crates/core/src/train.rs

/root/repo/target/release/deps/libpassflow_core-24a2116fd47a1a83.rmeta: crates/core/src/lib.rs crates/core/src/conditional.rs crates/core/src/config.rs crates/core/src/coupling.rs crates/core/src/engine/mod.rs crates/core/src/engine/attack.rs crates/core/src/engine/guesser.rs crates/core/src/engine/sharded.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/guess.rs crates/core/src/interpolate.rs crates/core/src/mask.rs crates/core/src/persist.rs crates/core/src/prior.rs crates/core/src/sample/mod.rs crates/core/src/sample/dynamic.rs crates/core/src/sample/smoothing.rs crates/core/src/train.rs

crates/core/src/lib.rs:
crates/core/src/conditional.rs:
crates/core/src/config.rs:
crates/core/src/coupling.rs:
crates/core/src/engine/mod.rs:
crates/core/src/engine/attack.rs:
crates/core/src/engine/guesser.rs:
crates/core/src/engine/sharded.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/guess.rs:
crates/core/src/interpolate.rs:
crates/core/src/mask.rs:
crates/core/src/persist.rs:
crates/core/src/prior.rs:
crates/core/src/sample/mod.rs:
crates/core/src/sample/dynamic.rs:
crates/core/src/sample/smoothing.rs:
crates/core/src/train.rs:
