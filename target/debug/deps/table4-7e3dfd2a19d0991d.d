/root/repo/target/debug/deps/table4-7e3dfd2a19d0991d.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-7e3dfd2a19d0991d: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
