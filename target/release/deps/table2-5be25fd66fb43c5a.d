/root/repo/target/release/deps/table2-5be25fd66fb43c5a.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-5be25fd66fb43c5a: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
