//! Drivers regenerating the paper's tables.
//!
//! Each function produces a [`Table`] with the same rows/columns as the
//! corresponding table in the paper, measured on the synthetic corpus at the
//! workbench's scale. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record.

use std::collections::HashSet;

use passflow_baselines::{Cwae, MarkovModel, PassGan, PcfgModel};
use passflow_core::{
    Attack, AttackOutcome, CheckpointReport, DynamicParams, GaussianSmoothing, Guesser,
    GuessingStrategy, MaskStrategy, PassFlow, Result,
};
use passflow_nn::rng as nnrng;
use passflow_passwords::stats::CorpusStats;

use crate::report::{format_budget, format_count, format_percent, Table};
use crate::scale::Workbench;

/// Runs a PassFlow attack with the given strategy over every budget of the
/// workbench's scale and returns the outcome.
pub fn flow_attack(wb: &Workbench, strategy: GuessingStrategy) -> AttackOutcome {
    use rand::RngCore;
    Attack::new(&wb.test_set())
        .budget(wb.scale.max_budget())
        .batch_size(wb.scale.attack_batch)
        .strategy(strategy)
        .checkpoints(wb.scale.budgets.clone())
        .seed(nnrng::derived(wb.scale.seed, 100).next_u64())
        .shards(wb.scale.attack_shards)
        .nonmatched_samples(64)
        .run(&wb.flow)
        .expect("the flow has latent access for every strategy")
}

/// Runs a static-sampling attack with any guesser over the workbench's
/// budgets (the baseline rows of Tables II and III).
pub fn baseline_attack(
    wb: &Workbench,
    guesser: &dyn Guesser,
    targets: &HashSet<String>,
) -> Vec<CheckpointReport> {
    Attack::new(targets)
        .budget(wb.scale.max_budget())
        .batch_size(wb.scale.attack_batch)
        .checkpoints(wb.scale.budgets.clone())
        .seed(wb.scale.seed ^ 0xBA5E)
        .shards(wb.scale.attack_shards)
        .run(guesser)
        .expect("static sampling needs no latent access")
        .checkpoints
}

/// The three PassFlow strategies of Tables II and III, with the paper's
/// Table I dynamic-sampling parameters for the workbench's maximum budget.
pub fn flow_strategies(wb: &Workbench) -> Vec<GuessingStrategy> {
    let params = DynamicParams::paper_defaults(wb.scale.max_budget());
    vec![
        GuessingStrategy::Static,
        GuessingStrategy::Dynamic(params),
        GuessingStrategy::DynamicWithSmoothing {
            params,
            smoothing: GaussianSmoothing::default(),
        },
    ]
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// Table I: the Dynamic Sampling parameters (α, σ, γ) used at each guess
/// budget.
pub fn table1(budgets: &[u64]) -> Table {
    let mut table = Table::new(
        "Table I: dynamic sampling parameters per guess budget",
        vec![
            "Guesses".to_string(),
            "alpha".to_string(),
            "sigma".to_string(),
            "gamma".to_string(),
        ],
    );
    for &budget in budgets {
        let params = DynamicParams::paper_defaults(budget);
        let gamma = match params.penalization {
            passflow_core::Penalization::Step { gamma } => gamma.to_string(),
            passflow_core::Penalization::None => "-".to_string(),
        };
        table.push_row(vec![
            format_budget(budget),
            params.alpha.to_string(),
            format!("{:.2}", params.sigma),
            gamma,
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------------

/// Table II: percentage of test-set passwords matched by every method at
/// each guess budget.
///
/// Rows: the GAN and CWAE baselines (trained on the same split), the classic
/// Markov and PCFG guessers (extra sanity rows not in the paper's table),
/// and the three PassFlow strategies.
///
/// # Errors
///
/// Propagates training errors from the core crate.
pub fn table2(wb: &Workbench) -> Result<Table> {
    let targets = wb.test_set();
    let budgets = &wb.scale.budgets;
    let mut headers = vec!["Method".to_string()];
    headers.extend(budgets.iter().map(|b| format_budget(*b)));
    let mut table = Table::new(
        "Table II: % of matched passwords over the test set",
        headers,
    );

    // Baselines trained on the same training split.
    let encoder = wb.flow.encoder().clone();
    let gan = PassGan::train(
        &wb.split.train,
        encoder.clone(),
        wb.scale.gan_config.clone().with_seed(wb.scale.seed),
    );
    let cwae = Cwae::train(
        &wb.split.train,
        encoder,
        wb.scale.cwae_config.clone().with_seed(wb.scale.seed),
    );
    let markov = MarkovModel::train(&wb.split.train, 3, wb.flow.encoder().max_len());
    let pcfg = PcfgModel::train(&wb.split.train, wb.flow.encoder().max_len());

    let baselines: Vec<&dyn Guesser> = vec![&gan, &cwae, &markov, &pcfg];
    for guesser in baselines {
        let reports = baseline_attack(wb, guesser, &targets);
        let mut row = vec![guesser.name().to_string()];
        row.extend(reports.iter().map(|r| format_percent(r.matched_percent)));
        table.push_row(row);
    }

    // PassFlow strategies.
    for strategy in flow_strategies(wb) {
        let outcome = flow_attack(wb, strategy);
        let mut row = vec![outcome.strategy.clone()];
        row.extend(
            outcome
                .checkpoints
                .iter()
                .map(|r| format_percent(r.matched_percent)),
        );
        table.push_row(row);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Table III
// ---------------------------------------------------------------------------

/// Table III: unique and matched guess counts for the latent-space models
/// (CWAE and the three PassFlow strategies) at each budget.
///
/// # Errors
///
/// Propagates training errors from the core crate.
pub fn table3(wb: &Workbench) -> Result<Table> {
    let targets = wb.test_set();
    let budgets = &wb.scale.budgets;

    let cwae = Cwae::train(
        &wb.split.train,
        wb.flow.encoder().clone(),
        wb.scale.cwae_config.clone().with_seed(wb.scale.seed),
    );
    let cwae_reports = baseline_attack(wb, &cwae, &targets);

    let mut columns: Vec<(String, Vec<(u64, u64)>)> = vec![(
        "CWAE".to_string(),
        cwae_reports.iter().map(|r| (r.unique, r.matched)).collect(),
    )];
    for strategy in flow_strategies(wb) {
        let outcome = flow_attack(wb, strategy);
        columns.push((
            outcome.strategy.clone(),
            outcome
                .checkpoints
                .iter()
                .map(|r| (r.unique, r.matched))
                .collect(),
        ));
    }

    let mut headers = vec!["Guesses".to_string()];
    for (name, _) in &columns {
        headers.push(format!("{name} unique"));
        headers.push(format!("{name} matched"));
    }
    let mut table = Table::new(
        "Table III: unique and matched passwords per method",
        headers,
    );
    for (i, &budget) in budgets.iter().enumerate() {
        let mut row = vec![format_budget(budget)];
        for (_, cells) in &columns {
            let (unique, matched) = cells.get(i).copied().unwrap_or((0, 0));
            row.push(format_count(unique));
            row.push(format_count(matched));
        }
        table.push_row(row);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Table IV
// ---------------------------------------------------------------------------

/// Table IV: a sample of generated guesses that did *not* match the test
/// set, together with structural statistics showing they still follow the
/// human-password distribution.
pub fn table4(wb: &Workbench, num_samples: usize) -> Table {
    let outcome = flow_attack(wb, GuessingStrategy::Static);
    let samples: Vec<String> = outcome
        .nonmatched_samples
        .iter()
        .take(num_samples)
        .cloned()
        .collect();

    let mut table = Table::new(
        "Table IV: non-matched samples generated by PassFlow",
        vec![
            "Sample 1".to_string(),
            "Sample 2".to_string(),
            "Sample 3".to_string(),
            "Sample 4".to_string(),
        ],
    );
    for chunk in samples.chunks(4) {
        let mut row: Vec<String> = chunk.to_vec();
        while row.len() < 4 {
            row.push(String::new());
        }
        table.push_row(row);
    }

    // Quantitative footing: compare character statistics of non-matched
    // samples against the real test set.
    let real_stats = CorpusStats::compute(wb.split.test_unique.iter().map(String::as_str));
    let sample_stats = CorpusStats::compute(samples.iter().map(String::as_str));
    let js = real_stats.char_js_divergence(&sample_stats);
    let coverage = real_stats.template_coverage(samples.iter().map(String::as_str));
    table.push_row(vec![
        format!("char JS divergence vs test set: {js:.3}"),
        format!("template coverage: {:.2}", coverage),
        format!("mean length: {:.2}", sample_stats.mean_length),
        format!("letter fraction: {:.2}", sample_stats.letter_fraction),
    ]);
    table
}

// ---------------------------------------------------------------------------
// Table V
// ---------------------------------------------------------------------------

/// Table V: the first 10 unique passwords obtained by sampling around a
/// pivot password at increasing σ.
///
/// # Errors
///
/// Returns an error if the pivot cannot be encoded.
pub fn table5(wb: &Workbench, pivot: &str) -> Result<Table> {
    let sigmas = [0.05f32, 0.08, 0.10, 0.15];
    let mut columns: Vec<Vec<String>> = Vec::new();
    for (i, &sigma) in sigmas.iter().enumerate() {
        let mut rng = nnrng::derived(wb.scale.seed, 200 + i as u64);
        let mut unique: Vec<String> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        // Sample in chunks until 10 unique neighbours are collected.
        let mut attempts = 0;
        while unique.len() < 10 && attempts < 50 {
            for candidate in wb.flow.sample_near(pivot, sigma, 64, &mut rng)? {
                if !candidate.is_empty() && seen.insert(candidate.clone()) {
                    unique.push(candidate);
                    if unique.len() == 10 {
                        break;
                    }
                }
            }
            attempts += 1;
        }
        columns.push(unique);
    }

    let mut table = Table::new(
        format!("Table V: first 10 unique passwords sampled around the pivot {pivot:?}"),
        sigmas.iter().map(|s| format!("sigma = {s:.2}")).collect(),
    );
    for row_idx in 0..10 {
        let row: Vec<String> = columns
            .iter()
            .map(|col| col.get(row_idx).cloned().unwrap_or_default())
            .collect();
        table.push_row(row);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Table VI
// ---------------------------------------------------------------------------

/// Table VI: the masking ablation — matched counts for flows trained with
/// horizontal, char-run-2 and char-run-1 masking.
///
/// The workbench's own flow is reused for the char-run-1 column (the default
/// masking); the other two maskings are trained from scratch on the same
/// split.
///
/// # Errors
///
/// Propagates training errors from the core crate.
pub fn table6(wb: &Workbench) -> Result<Table> {
    let strategies = [
        MaskStrategy::Horizontal,
        MaskStrategy::CharRun(2),
        MaskStrategy::CharRun(1),
    ];
    let targets = wb.test_set();
    let budgets = &wb.scale.budgets;

    let mut per_masking: Vec<(String, Vec<u64>)> = Vec::new();
    for (i, masking) in strategies.iter().enumerate() {
        let flow = if *masking == wb.scale.flow_config.masking {
            wb.flow.clone()
        } else {
            let config = wb.scale.flow_config.clone().with_masking(*masking);
            let mut rng = nnrng::derived(wb.scale.seed, 300 + i as u64);
            let flow = PassFlow::new(config, &mut rng)?;
            passflow_core::train(&flow, &wb.split.train, &wb.scale.train_config)?;
            flow
        };
        let outcome = Attack::new(&targets)
            .budget(wb.scale.max_budget())
            .batch_size(wb.scale.attack_batch)
            .checkpoints(budgets.clone())
            .seed(wb.scale.seed ^ 0x6A5)
            .shards(wb.scale.attack_shards)
            .nonmatched_samples(0)
            .run(&flow)
            .expect("static sampling needs no latent access");
        per_masking.push((
            masking.label(),
            outcome.checkpoints.iter().map(|r| r.matched).collect(),
        ));
    }

    let mut headers = vec!["Guesses".to_string()];
    headers.extend(
        per_masking
            .iter()
            .map(|(name, _)| format!("{name} matched")),
    );
    let mut table = Table::new(
        "Table VI: matched passwords per masking strategy (static sampling)",
        headers,
    );
    for (i, &budget) in budgets.iter().enumerate() {
        let mut row = vec![format_budget(budget)];
        for (_, matches) in &per_masking {
            row.push(format_count(matches.get(i).copied().unwrap_or(0)));
        }
        table.push_row(row);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::EvalScale;
    use std::sync::OnceLock;

    /// The smoke-scale workbench is expensive enough that the table tests
    /// share one instance.
    fn workbench() -> &'static Workbench {
        static WB: OnceLock<Workbench> = OnceLock::new();
        WB.get_or_init(|| Workbench::prepare(EvalScale::smoke()).unwrap())
    }

    #[test]
    fn table1_reports_one_row_per_budget() {
        let t = table1(&[10_000, 1_000_000, 100_000_000]);
        assert_eq!(t.num_rows(), 3);
        assert!(t.render().contains("10^4"));
        assert!(t.rows[2][1].contains("50"));
    }

    #[test]
    fn table2_contains_all_methods_and_valid_percentages() {
        let t = table2(workbench()).unwrap();
        let rendered = t.render();
        for method in [
            "PassGAN (WGAN)",
            "CWAE",
            "Markov",
            "PCFG",
            "PassFlow-Static",
            "PassFlow-Dynamic",
            "PassFlow-Dynamic+GS",
        ] {
            assert!(rendered.contains(method), "missing row {method}");
        }
        assert_eq!(t.num_rows(), 7);
        // Every percentage cell parses and is within [0, 100].
        for row in &t.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!((0.0..=100.0).contains(&v));
            }
        }
    }

    #[test]
    fn table3_counts_are_consistent() {
        let t = table3(workbench()).unwrap();
        assert_eq!(t.num_rows(), workbench().scale.budgets.len());
        // Unique counts never exceed the budget.
        for (row, &budget) in t.rows.iter().zip(workbench().scale.budgets.iter()) {
            for pair in row[1..].chunks(2) {
                let unique: u64 = pair[0].replace(',', "").parse().unwrap();
                let matched: u64 = pair[1].replace(',', "").parse().unwrap();
                assert!(unique <= budget);
                assert!(matched <= unique);
            }
        }
    }

    #[test]
    fn table4_reports_samples_and_statistics() {
        let t = table4(workbench(), 12);
        assert!(t.num_rows() >= 3);
        let rendered = t.render();
        assert!(rendered.contains("JS divergence"));
        assert!(rendered.contains("template coverage"));
    }

    #[test]
    fn table5_has_ten_rows_of_neighbours() {
        let t = table5(workbench(), "jimmy91").unwrap();
        assert_eq!(t.num_rows(), 10);
        assert_eq!(t.headers.len(), 4);
        // At least the small-sigma column should be mostly filled.
        let filled = t.rows.iter().filter(|r| !r[0].is_empty()).count();
        assert!(filled >= 5, "only {filled} neighbours found");
    }

    #[test]
    fn table5_rejects_unencodable_pivot() {
        assert!(table5(workbench(), "definitely too long to encode").is_err());
    }

    #[test]
    fn flow_strategies_match_paper_rows() {
        let strategies = flow_strategies(workbench());
        assert_eq!(strategies.len(), 3);
        assert_eq!(strategies[0].label(), "PassFlow-Static");
        assert_eq!(strategies[2].label(), "PassFlow-Dynamic+GS");
    }
}
