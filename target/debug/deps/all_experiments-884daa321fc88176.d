/root/repo/target/debug/deps/all_experiments-884daa321fc88176.d: crates/bench/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-884daa321fc88176.rmeta: crates/bench/src/bin/all_experiments.rs Cargo.toml

crates/bench/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
