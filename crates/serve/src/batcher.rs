//! The adaptive micro-batching queue between HTTP handlers and the flow.
//!
//! Per-request scalar scoring wastes the blocked GEMM the inference fast
//! path was built around: a 1-row matrix product cannot amortize anything.
//! The batcher turns concurrent single-password requests back into the
//! batched [`FlowSnapshot::log_prob_into`] shape: handlers enqueue jobs on
//! a **bounded** MPSC channel (overload is shed at enqueue time with a 503,
//! never by buffering without limit) and one batcher thread coalesces them
//! into per-tick micro-batches.
//!
//! Each tick works like this:
//!
//! 1. Block on the first job (an idle server burns no CPU).
//! 2. **Adaptive wait**: if the *previous* tick filled `max_batch`, the
//!    queue is saturated — drain whatever is ready without sleeping (any
//!    waiting would only grow latency; the backlog already guarantees full
//!    batches). Otherwise, wait up to `max_wait` for stragglers so
//!    concurrent requests land in one GEMM instead of many.
//! 3. Group the drained jobs by their resolved model `Arc` (requests
//!    resolve models at dispatch, so a hot-swap never mixes weights inside
//!    a response) and run **one** fused scoring call per group.
//! 4. Send each job its slice of the results over its reply channel.
//!
//! Because every fused kernel is row-independent, a password's score is
//! bit-identical whether it was scored alone or coalesced into a 64-row
//! tick — the concurrency suite in `tests/serve.rs` asserts this at 0 ULP.
//!
//! [`FlowSnapshot::log_prob_into`]: passflow_core::FlowSnapshot::log_prob_into

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use passflow_core::FlowWorkspace;

use crate::metrics::Metrics;
use crate::registry::ServedModel;

/// A scoring job: the passwords of one request plus where to send results.
pub struct ScoreJob {
    /// The model resolved at dispatch time (immutable for this job).
    pub model: Arc<ServedModel>,
    /// Passwords to score (one per row of the request's `passwords` array).
    pub passwords: Vec<String>,
    /// Latest instant at which scoring this job is still useful. Jobs
    /// found expired at drain time are answered [`ScoreOutcome::Expired`]
    /// (the handler turns that into a 504) instead of burning GEMM rows on
    /// a response nobody is waiting for.
    pub deadline: Instant,
    /// One-shot reply channel; receives exactly one outcome.
    pub reply: mpsc::SyncSender<ScoreOutcome>,
}

/// What a job's reply channel receives.
#[derive(Clone, Debug)]
pub enum ScoreOutcome {
    /// Scores in input order, one entry per password (`None` for
    /// unencodable passwords).
    Scored(Vec<Option<f64>>),
    /// The job's deadline expired before a tick picked it up.
    Expired,
}

/// Tuning knobs for the batcher.
#[derive(Clone, Copy, Debug)]
pub struct BatcherConfig {
    /// Maximum passwords scored per tick (the GEMM row count).
    pub max_batch: usize,
    /// Maximum time a tick waits for stragglers after its first job.
    pub max_wait: Duration,
    /// Bound of the job queue; enqueueing beyond it sheds load (503).
    pub queue_capacity: usize,
    /// GEMM threads for the batcher's scoring workspace (resolved through
    /// the repo-wide [`passflow_nn::clamp_threads`] discipline; `1` keeps
    /// the serial kernels). Scores are bit-identical at any thread count.
    pub threads: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            threads: 1,
        }
    }
}

/// What travels over the batcher queue.
enum Job {
    /// A scoring job from a handler.
    Score(ScoreJob),
    /// Shutdown token: score what is already queued, then exit.
    Shutdown,
}

/// Handle for submitting jobs to the batcher thread.
#[derive(Clone)]
pub struct BatcherHandle {
    sender: mpsc::SyncSender<Job>,
    alive: Arc<AtomicBool>,
}

/// Why a job could not be enqueued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueError {
    /// The bounded queue is full — the server is overloaded.
    Overloaded,
    /// The batcher has shut down.
    ShuttingDown,
}

impl BatcherHandle {
    /// Enqueues a job without blocking; overload is reported, not buffered.
    pub fn submit(&self, job: ScoreJob) -> Result<(), EnqueueError> {
        self.sender.try_send(Job::Score(job)).map_err(|e| match e {
            mpsc::TrySendError::Full(_) => EnqueueError::Overloaded,
            mpsc::TrySendError::Disconnected(_) => EnqueueError::ShuttingDown,
        })
    }

    /// Whether the batcher thread is still running (for `/healthz`; flips
    /// false on graceful shutdown *and* if the thread ever dies).
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }
}

/// The batcher thread plus its submission handle.
pub struct Batcher {
    handle: BatcherHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Spawns the batcher thread.
    pub fn spawn(config: BatcherConfig, metrics: Arc<Metrics>) -> Batcher {
        let (sender, receiver) = mpsc::sync_channel::<Job>(config.queue_capacity.max(1));
        let alive = Arc::new(AtomicBool::new(true));
        let alive_flag = Arc::clone(&alive);
        let thread = std::thread::Builder::new()
            .name("passflow-batcher".to_string())
            .spawn(move || {
                // Flips the liveness flag however the loop exits — a panic
                // unwinding through here still marks the batcher dead, so
                // `/healthz` tells the truth.
                struct AliveGuard(Arc<AtomicBool>);
                impl Drop for AliveGuard {
                    fn drop(&mut self) {
                        self.0.store(false, Ordering::SeqCst);
                    }
                }
                let _guard = AliveGuard(alive_flag);
                run_loop(&receiver, config, &metrics);
            })
            .expect("spawning the batcher thread");
        Batcher {
            handle: BatcherHandle { sender, alive },
            thread: Some(thread),
        }
    }

    /// A cloneable submission handle for connection handlers.
    pub fn handle(&self) -> BatcherHandle {
        self.handle.clone()
    }
}

impl Drop for Batcher {
    /// Sends the shutdown token and joins the thread; jobs already queued
    /// are still scored before the thread exits (graceful drain). Handle
    /// clones held elsewhere merely get [`EnqueueError::ShuttingDown`] (or
    /// an unanswered reply channel) afterwards — they cannot stall the
    /// join.
    fn drop(&mut self) {
        let _ = self.handle.sender.send(Job::Shutdown);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn run_loop(receiver: &mpsc::Receiver<Job>, config: BatcherConfig, metrics: &Metrics) {
    let max_batch = config.max_batch.max(1);
    let mut ws = FlowWorkspace::with_threads(passflow_nn::clamp_threads(config.threads));
    let mut scores: Vec<Option<f64>> = Vec::new();
    // Whether the previous tick was full — the saturation signal driving
    // the adaptive wait.
    let mut saturated = false;
    let mut stop = false;

    while !stop {
        // 1. Block for the first job of the tick.
        let first = match receiver.recv() {
            Ok(Job::Score(job)) => job,
            Ok(Job::Shutdown) | Err(mpsc::RecvError) => return,
        };
        let mut jobs = vec![first];
        let mut rows: usize = jobs[0].passwords.len();

        // 2. Drain up to max_batch rows, waiting only while unsaturated.
        let deadline = Instant::now() + config.max_wait;
        while rows < max_batch {
            let received = if saturated {
                receiver.try_recv().ok()
            } else {
                deadline
                    .checked_duration_since(Instant::now())
                    .filter(|d| !d.is_zero())
                    .and_then(|remaining| receiver.recv_timeout(remaining).ok())
            };
            match received {
                Some(Job::Score(job)) => {
                    rows += job.passwords.len();
                    jobs.push(job);
                }
                Some(Job::Shutdown) => {
                    stop = true;
                    break;
                }
                None => break,
            }
        }
        // Saturation is a queue-pressure signal, so expired jobs count
        // toward it — they occupied queue slots all the same.
        saturated = rows >= max_batch;
        let live = expire_jobs(jobs, metrics);
        if live.is_empty() {
            continue;
        }
        metrics.record_batch(live.iter().map(|j| j.passwords.len()).sum());
        score_tick(&live, &mut ws, &mut scores);
    }

    // Graceful drain: score anything that was queued before the shutdown
    // token, one final oversized tick per model. Deadlines still apply —
    // an expired job is no more worth scoring at shutdown than before.
    let mut pending = Vec::new();
    while let Ok(Job::Score(job)) = receiver.try_recv() {
        pending.push(job);
    }
    let pending = expire_jobs(pending, metrics);
    if !pending.is_empty() {
        metrics.record_batch(pending.iter().map(|j| j.passwords.len()).sum());
        score_tick(&pending, &mut ws, &mut scores);
    }
}

/// Answers every already-expired job with [`ScoreOutcome::Expired`] (the
/// handler's 504) and returns the jobs still worth scoring.
fn expire_jobs(jobs: Vec<ScoreJob>, metrics: &Metrics) -> Vec<ScoreJob> {
    let now = Instant::now();
    let mut live = Vec::with_capacity(jobs.len());
    for job in jobs {
        if job.deadline <= now {
            metrics.record_deadline_expired();
            let _ = job.reply.try_send(ScoreOutcome::Expired);
        } else {
            live.push(job);
        }
    }
    live
}

/// Scores one tick: one fused call per distinct model, results split back
/// out to each job's reply channel in input order.
///
/// Jobs arrive roughly model-sorted (most deployments serve one hot model),
/// so grouping by pointer identity over the small job list is cheaper than
/// a hash map. Requests resolved their model `Arc` at dispatch, so a
/// hot-swap never mixes weights inside a single response.
fn score_tick(jobs: &[ScoreJob], ws: &mut FlowWorkspace, scores: &mut Vec<Option<f64>>) {
    let mut scored = vec![false; jobs.len()];
    for i in 0..jobs.len() {
        if scored[i] {
            continue;
        }
        let model = &jobs[i].model;
        let group: Vec<usize> = (i..jobs.len())
            .filter(|&j| !scored[j] && Arc::ptr_eq(&jobs[j].model, model))
            .collect();
        // Single-job groups (every serial-mode tick, and any tick with one
        // request) score the job's own password slice directly; only a
        // genuinely coalesced group pays for concatenating the strings.
        let concatenated: Vec<String>;
        let batch: &[String] = if group.len() == 1 {
            &jobs[group[0]].passwords
        } else {
            concatenated = group
                .iter()
                .flat_map(|&j| jobs[j].passwords.iter().cloned())
                .collect();
            &concatenated
        };
        model.log_probs_with(batch, ws, scores);

        let mut offset = 0usize;
        for &j in &group {
            let n = jobs[j].passwords.len();
            let slice = scores[offset..offset + n].to_vec();
            offset += n;
            scored[j] = true;
            // A dropped receiver (client disconnected mid-flight) is not
            // an error; the score is simply discarded.
            let _ = jobs[j].reply.try_send(ScoreOutcome::Scored(slice));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ServedModel;
    use passflow_core::{FlowConfig, PassFlow, ProbabilityModel};
    use passflow_nn::rng as nnrng;

    fn served(seed: u64) -> (PassFlow, Arc<ServedModel>) {
        let mut rng = nnrng::seeded(seed);
        let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
        let model = Arc::new(ServedModel::from_flow("m", &flow, 1, None));
        (flow, model)
    }

    /// A deadline far enough out that tests never trip it accidentally.
    fn lenient_deadline() -> Instant {
        Instant::now() + Duration::from_secs(300)
    }

    fn expect_scores(outcome: ScoreOutcome) -> Vec<Option<f64>> {
        match outcome {
            ScoreOutcome::Scored(scores) => scores,
            ScoreOutcome::Expired => panic!("job expired under a lenient deadline"),
        }
    }

    fn submit_one(handle: &BatcherHandle, model: &Arc<ServedModel>, pw: &str) -> Option<f64> {
        let (reply, rx) = mpsc::sync_channel(1);
        handle
            .submit(ScoreJob {
                model: Arc::clone(model),
                passwords: vec![pw.to_string()],
                deadline: lenient_deadline(),
                reply,
            })
            .unwrap();
        expect_scores(rx.recv_timeout(Duration::from_secs(30)).unwrap())[0]
    }

    #[test]
    fn batched_scores_match_direct_scoring() {
        let (flow, model) = served(41);
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::spawn(BatcherConfig::default(), Arc::clone(&metrics));
        let handle = batcher.handle();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let handle = handle.clone();
                let model = Arc::clone(&model);
                std::thread::spawn(move || {
                    (0..5)
                        .map(|i| {
                            let pw = format!("pw{t}x{i}");
                            (pw.clone(), submit_one(&handle, &model, &pw))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for t in threads {
            for (pw, got) in t.join().unwrap() {
                let expected = flow.password_log_prob(&pw).unwrap();
                assert_eq!(got.unwrap().to_bits(), expected.to_bits(), "{pw}");
            }
        }
        drop(batcher);
        assert!(
            metrics.total_requests() == 0,
            "batcher records batches only"
        );
    }

    #[test]
    fn mixed_model_ticks_never_cross_wires() {
        let (flow_a, model_a) = served(42);
        let (flow_b, model_b) = served(43);
        let batcher = Batcher::spawn(
            BatcherConfig {
                // A long wait forces both models into the same tick.
                max_wait: Duration::from_millis(50),
                ..BatcherConfig::default()
            },
            Arc::new(Metrics::new()),
        );
        let handle = batcher.handle();
        let ha = handle.clone();
        let a = std::thread::spawn(move || submit_one(&ha, &model_a, "jimmy91"));
        let b = submit_one(&handle, &model_b, "jimmy91");
        let a = a.join().unwrap();
        assert_eq!(
            a.unwrap().to_bits(),
            flow_a.password_log_prob("jimmy91").unwrap().to_bits()
        );
        assert_eq!(
            b.unwrap().to_bits(),
            flow_b.password_log_prob("jimmy91").unwrap().to_bits()
        );
    }

    #[test]
    fn overload_is_shed_not_buffered() {
        let (_flow, model) = served(44);
        // Capacity-1 queue with a stalled batcher: fill it, then expect
        // Overloaded. Stall by submitting a job whose model scoring is slow
        // enough — instead, simply don't start draining: use max_wait 0 and
        // flood from this thread faster than the batcher can drain.
        let batcher = Batcher::spawn(
            BatcherConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
                queue_capacity: 1,
                ..BatcherConfig::default()
            },
            Arc::new(Metrics::new()),
        );
        let handle = batcher.handle();
        let mut saw_overload = false;
        let mut receivers = Vec::new();
        for i in 0..200 {
            let (reply, rx) = mpsc::sync_channel(1);
            match handle.submit(ScoreJob {
                model: Arc::clone(&model),
                passwords: vec![format!("pw{i}")],
                deadline: lenient_deadline(),
                reply,
            }) {
                Ok(()) => receivers.push(rx),
                Err(EnqueueError::Overloaded) => {
                    saw_overload = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(saw_overload, "a capacity-1 queue must shed a 200-job flood");
        // Accepted jobs still complete (graceful drain on drop).
        drop(batcher);
        for rx in receivers {
            assert!(rx.recv_timeout(Duration::from_secs(30)).is_ok());
        }
    }

    #[test]
    fn expired_jobs_are_dropped_not_scored() {
        let (_flow, model) = served(46);
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::spawn(
            BatcherConfig {
                // A long straggler wait gives the already-expired job time
                // to be drained into a tick deterministically.
                max_wait: Duration::from_millis(50),
                ..BatcherConfig::default()
            },
            Arc::clone(&metrics),
        );
        let handle = batcher.handle();
        assert!(handle.is_alive());

        let (reply, expired_rx) = mpsc::sync_channel(1);
        handle
            .submit(ScoreJob {
                model: Arc::clone(&model),
                passwords: vec!["stale".to_string()],
                deadline: Instant::now() - Duration::from_millis(1),
                reply,
            })
            .unwrap();
        // A live job in the same tick still gets scored.
        let live = submit_one(&handle, &model, "fresh");
        assert!(live.is_some());
        match expired_rx.recv_timeout(Duration::from_secs(30)).unwrap() {
            ScoreOutcome::Expired => {}
            ScoreOutcome::Scored(_) => panic!("expired job must not be scored"),
        }
        assert_eq!(metrics.deadline_expired_total(), 1);
        drop(batcher);
        assert!(!handle.is_alive(), "drained batcher reports dead");
    }

    #[test]
    fn multi_password_jobs_keep_input_order() {
        let (flow, model) = served(45);
        let batcher = Batcher::spawn(BatcherConfig::default(), Arc::new(Metrics::new()));
        let passwords: Vec<String> = (0..10).map(|i| format!("word{i}")).collect();
        let (reply, rx) = mpsc::sync_channel(1);
        batcher
            .handle()
            .submit(ScoreJob {
                model,
                passwords: passwords.clone(),
                deadline: lenient_deadline(),
                reply,
            })
            .unwrap();
        let scores = expect_scores(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        let expected = flow.password_log_probs(&passwords);
        assert_eq!(scores.len(), expected.len());
        for (a, b) in scores.iter().zip(expected.iter()) {
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        }
    }
}
