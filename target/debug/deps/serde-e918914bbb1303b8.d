/root/repo/target/debug/deps/serde-e918914bbb1303b8.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-e918914bbb1303b8.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
