//! No-op `Serialize` / `Deserialize` derive macros for the offline `serde`
//! shim: the marker traits in the `serde` shim are blanket-implemented, so
//! the derives have nothing to emit.

use proc_macro::TokenStream;

/// Derives the (marker) `Serialize` trait. Emits nothing: the shim trait is
/// blanket-implemented for all types.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives the (marker) `Deserialize` trait. Emits nothing: the shim trait
/// is blanket-implemented for all types.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
