//! Corpus container and the paper's train/test preparation pipeline.
//!
//! Section IV-D of the paper: the RockYou corpus is filtered to passwords of
//! length ≤ 10, split 80/20 into train/test, the *training* side is
//! subsampled to 300K instances, and the *test* side is cleaned by removing
//! duplicates and any password that also appears in the training set,
//! leaving ~1.94M unique test passwords. [`PasswordCorpus::paper_split`]
//! reproduces exactly that pipeline at configurable scale.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

use passflow_nn::rng as nnrng;

/// A multiset of password instances (duplicates allowed, as in a real leak).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PasswordCorpus {
    passwords: Vec<String>,
}

/// The result of the paper's train/test preparation pipeline.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusSplit {
    /// Training instances (possibly subsampled, duplicates retained as in the
    /// paper, since the model learns the empirical distribution).
    pub train: Vec<String>,
    /// Unique test passwords with the train ∩ test intersection removed.
    /// This is the set guesses are matched against.
    pub test_unique: Vec<String>,
}

impl PasswordCorpus {
    /// Creates a corpus from raw password instances.
    pub fn new(passwords: Vec<String>) -> Self {
        PasswordCorpus { passwords }
    }

    /// Creates a corpus by parsing one password per line, skipping empty
    /// lines. This accepts the format of common password-list files, so a
    /// real corpus (e.g. an authorized copy of RockYou) can be dropped in.
    pub fn from_lines(text: &str) -> Self {
        PasswordCorpus {
            passwords: text
                .lines()
                .map(str::trim_end)
                .filter(|l| !l.is_empty())
                .map(str::to_string)
                .collect(),
        }
    }

    /// Number of password instances (with duplicates).
    pub fn len(&self) -> usize {
        self.passwords.len()
    }

    /// Returns `true` if the corpus contains no passwords.
    pub fn is_empty(&self) -> bool {
        self.passwords.is_empty()
    }

    /// Iterator over the password instances.
    pub fn iter(&self) -> std::slice::Iter<'_, String> {
        self.passwords.iter()
    }

    /// Borrow of the underlying instances.
    pub fn passwords(&self) -> &[String] {
        &self.passwords
    }

    /// Consumes the corpus and returns the underlying instances.
    pub fn into_passwords(self) -> Vec<String> {
        self.passwords
    }

    /// Number of distinct passwords.
    pub fn unique_count(&self) -> usize {
        self.passwords.iter().collect::<HashSet<_>>().len()
    }

    /// Returns a new corpus containing only passwords of length ≤ `max_len`
    /// (in characters), the paper's length-10 filter.
    #[must_use]
    pub fn filter_max_len(&self, max_len: usize) -> PasswordCorpus {
        PasswordCorpus {
            passwords: self
                .passwords
                .iter()
                .filter(|p| p.chars().count() <= max_len)
                .cloned()
                .collect(),
        }
    }

    /// Randomly splits the corpus instances into two parts; `ratio` is the
    /// fraction assigned to the first part.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `(0, 1)`.
    pub fn split(&self, ratio: f64, seed: u64) -> (PasswordCorpus, PasswordCorpus) {
        assert!(ratio > 0.0 && ratio < 1.0, "ratio must be in (0, 1)");
        let mut rng = nnrng::seeded(seed);
        let mut shuffled = self.passwords.clone();
        shuffled.shuffle(&mut rng);
        let cut = ((shuffled.len() as f64) * ratio).round() as usize;
        let cut = cut.min(shuffled.len());
        let (first, second) = shuffled.split_at(cut);
        (
            PasswordCorpus::new(first.to_vec()),
            PasswordCorpus::new(second.to_vec()),
        )
    }

    /// Randomly subsamples `n` instances (without replacement if `n ≤ len`,
    /// otherwise returns a shuffled copy of everything).
    #[must_use]
    pub fn subsample(&self, n: usize, seed: u64) -> PasswordCorpus {
        let mut rng = nnrng::seeded(seed);
        let mut shuffled = self.passwords.clone();
        shuffled.shuffle(&mut rng);
        shuffled.truncate(n);
        PasswordCorpus::new(shuffled)
    }

    /// Samples `n` instances **with replacement** — handy for bootstrap
    /// analyses of guessing results.
    #[must_use]
    pub fn sample_with_replacement<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<String> {
        assert!(!self.is_empty(), "cannot sample from an empty corpus");
        (0..n)
            .map(|_| self.passwords[rng.gen_range(0..self.passwords.len())].clone())
            .collect()
    }

    /// Returns the distinct passwords in first-occurrence order.
    pub fn unique(&self) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for p in &self.passwords {
            if seen.insert(p.as_str()) {
                out.push(p.clone());
            }
        }
        out
    }

    /// The paper's full preparation pipeline:
    ///
    /// 1. split instances `train_ratio` / `1 - train_ratio` (80/20 in the
    ///    paper),
    /// 2. subsample the training side down to `train_subsample` instances
    ///    (300K in the paper; pass `usize::MAX` to keep everything),
    /// 3. deduplicate the test side and remove every password that also
    ///    occurs in the (full, pre-subsampling) training side.
    pub fn paper_split(&self, train_ratio: f64, train_subsample: usize, seed: u64) -> CorpusSplit {
        let (train_full, test_raw) = self.split(train_ratio, seed);
        let train_set: HashSet<&String> = train_full.passwords.iter().collect();
        let mut test_seen = HashSet::new();
        let mut test_unique = Vec::new();
        for p in test_raw.iter() {
            if !train_set.contains(p) && test_seen.insert(p.clone()) {
                test_unique.push(p.clone());
            }
        }
        let train = if train_subsample >= train_full.len() {
            train_full.into_passwords()
        } else {
            train_full
                .subsample(train_subsample, seed.wrapping_add(1))
                .into_passwords()
        };
        CorpusSplit { train, test_unique }
    }
}

impl FromIterator<String> for PasswordCorpus {
    fn from_iter<T: IntoIterator<Item = String>>(iter: T) -> Self {
        PasswordCorpus::new(iter.into_iter().collect())
    }
}

impl Extend<String> for PasswordCorpus {
    fn extend<T: IntoIterator<Item = String>>(&mut self, iter: T) {
        self.passwords.extend(iter);
    }
}

impl<'a> IntoIterator for &'a PasswordCorpus {
    type Item = &'a String;
    type IntoIter = std::slice::Iter<'a, String>;

    fn into_iter(self) -> Self::IntoIter {
        self.passwords.iter()
    }
}

impl CorpusSplit {
    /// Test set as a hash set for O(1) membership checks during guessing.
    pub fn test_set(&self) -> HashSet<String> {
        self.test_unique.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, SyntheticCorpusGenerator};

    fn sample_corpus() -> PasswordCorpus {
        SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(10_000)).generate(17)
    }

    #[test]
    fn from_lines_parses_and_skips_blanks() {
        let corpus = PasswordCorpus::from_lines("alpha\n\nbeta\ngamma\n");
        assert_eq!(corpus.len(), 3);
        assert_eq!(corpus.passwords()[1], "beta");
    }

    #[test]
    fn filter_max_len_removes_long_passwords() {
        let corpus = PasswordCorpus::new(vec![
            "short".into(),
            "exactlyten".into(),
            "elevenchars".into(),
        ]);
        let filtered = corpus.filter_max_len(10);
        assert_eq!(filtered.len(), 2);
        assert!(filtered.iter().all(|p| p.chars().count() <= 10));
    }

    #[test]
    fn split_partitions_all_instances() {
        let corpus = sample_corpus();
        let (a, b) = corpus.split(0.8, 3);
        assert_eq!(a.len() + b.len(), corpus.len());
        let ratio = a.len() as f64 / corpus.len() as f64;
        assert!((ratio - 0.8).abs() < 0.01, "ratio was {ratio}");
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let corpus = sample_corpus();
        let (a1, _) = corpus.split(0.5, 7);
        let (a2, _) = corpus.split(0.5, 7);
        let (a3, _) = corpus.split(0.5, 8);
        assert_eq!(a1, a2);
        assert_ne!(a1, a3);
    }

    #[test]
    fn subsample_returns_requested_count_without_duplication_bias() {
        let corpus = sample_corpus();
        let sub = corpus.subsample(500, 1);
        assert_eq!(sub.len(), 500);
        // Oversized request returns the whole corpus.
        let all = corpus.subsample(corpus.len() + 10, 1);
        assert_eq!(all.len(), corpus.len());
    }

    #[test]
    fn unique_preserves_first_occurrence_order() {
        let corpus = PasswordCorpus::new(vec![
            "b".into(),
            "a".into(),
            "b".into(),
            "c".into(),
            "a".into(),
        ]);
        assert_eq!(corpus.unique(), vec!["b", "a", "c"]);
        assert_eq!(corpus.unique_count(), 3);
    }

    #[test]
    fn paper_split_removes_train_test_intersection_and_duplicates() {
        let corpus = sample_corpus();
        let split = corpus.paper_split(0.8, 2_000, 5);
        assert_eq!(split.train.len(), 2_000);
        // Test set is unique.
        let unique: HashSet<&String> = split.test_unique.iter().collect();
        assert_eq!(unique.len(), split.test_unique.len());
        // No test password appears in the full training partition. We can't
        // check against the discarded full partition directly, but the
        // subsampled training set must certainly be disjoint.
        let train_set: HashSet<&String> = split.train.iter().collect();
        assert!(split.test_unique.iter().all(|p| !train_set.contains(p)));
    }

    #[test]
    fn paper_split_keeps_all_train_when_subsample_is_large() {
        let corpus = sample_corpus();
        let split = corpus.paper_split(0.8, usize::MAX, 5);
        assert_eq!(split.train.len(), (corpus.len() as f64 * 0.8) as usize);
    }

    #[test]
    fn test_set_matches_test_unique() {
        let corpus = sample_corpus();
        let split = corpus.paper_split(0.8, 1_000, 2);
        let set = split.test_set();
        assert_eq!(set.len(), split.test_unique.len());
        assert!(split.test_unique.iter().all(|p| set.contains(p)));
    }

    #[test]
    fn sample_with_replacement_draws_from_corpus() {
        let corpus = PasswordCorpus::new(vec!["only".into()]);
        let mut rng = nnrng::seeded(4);
        let sample = corpus.sample_with_replacement(5, &mut rng);
        assert_eq!(sample, vec!["only"; 5]);
    }

    #[test]
    fn collection_traits_work() {
        let mut corpus: PasswordCorpus = vec!["a".to_string()].into_iter().collect();
        corpus.extend(vec!["b".to_string()]);
        assert_eq!(corpus.len(), 2);
        let collected: Vec<&String> = (&corpus).into_iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    #[should_panic(expected = "ratio must be in (0, 1)")]
    fn split_rejects_bad_ratio() {
        let corpus = sample_corpus();
        let _ = corpus.split(1.0, 1);
    }
}
