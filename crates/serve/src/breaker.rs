//! A circuit breaker guarding the digest store.
//!
//! The store backs two endpoints with different promises: `/v1/screen`
//! *degrades* (scores without breach verdicts) and `/v1/range` *refuses*
//! (an honest 503) when reads fail. Both decisions go through this breaker
//! so a dying disk is probed a bounded number of times instead of once per
//! request:
//!
//! ```text
//!            K consecutive failures
//!  Closed ───────────────────────────▶ Open
//!    ▲                                  │ cooldown elapses
//!    │ probe succeeds                   ▼
//!    └────────────────────────────── HalfOpen ──▶ Open (probe fails)
//! ```
//!
//! While `Open`, every admission is rejected without touching the store —
//! the disk gets its cooldown, requests get their degraded answer
//! immediately instead of after a timeout. After the cooldown one request
//! is admitted as a **probe** ([`Admission::Probe`]); its outcome decides
//! whether the breaker closes or re-opens. A probe whose handler dies
//! without reporting does not wedge the state machine: another probe is
//! allowed once a fresh cooldown passes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive store failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// The three breaker states, exposed on `/healthz` and `/metrics`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Store healthy; requests flow.
    Closed,
    /// Store failing; requests are rejected without touching it.
    Open,
    /// Cooldown elapsed; one probe in flight decides what happens next.
    HalfOpen,
}

impl BreakerState {
    /// Lowercase label used in health and metrics output.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What [`CircuitBreaker::admit`] decided for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: use the store, report the outcome.
    Allow,
    /// Breaker half-open and this request is the probe: use the store and
    /// **definitely** report the outcome — it decides the next state.
    Probe,
    /// Breaker open: do not touch the store; degrade or refuse.
    Reject,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    /// When the breaker opened (drives the cooldown).
    opened_at: Option<Instant>,
    /// When the in-flight half-open probe was admitted; a probe older than
    /// a full cooldown is presumed lost and its slot is re-issued.
    probe_started: Option<Instant>,
}

/// The breaker itself: cheap enough to sit in front of every store access.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
    transitions: AtomicU64,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_started: None,
            }),
            transitions: AtomicU64::new(0),
        }
    }

    /// Decides whether one request may touch the store.
    pub fn admit(&self) -> Admission {
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_none_or(|at| at.elapsed() >= self.config.cooldown);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_started = Some(Instant::now());
                    self.transitions.fetch_add(1, Ordering::Relaxed);
                    Admission::Probe
                } else {
                    Admission::Reject
                }
            }
            BreakerState::HalfOpen => {
                // One probe at a time — unless the previous one is so old
                // it must have died unreported.
                let stale = inner
                    .probe_started
                    .is_none_or(|at| at.elapsed() >= self.config.cooldown);
                if stale {
                    inner.probe_started = Some(Instant::now());
                    Admission::Probe
                } else {
                    Admission::Reject
                }
            }
        }
    }

    /// Reports a successful store interaction.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().expect("breaker lock");
        inner.consecutive_failures = 0;
        if inner.state != BreakerState::Closed {
            inner.state = BreakerState::Closed;
            inner.opened_at = None;
            inner.probe_started = None;
            self.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reports a failed store interaction; returns `true` if this failure
    /// tripped (or re-tripped) the breaker open.
    pub fn record_failure(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    self.transitions.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: back to a full cooldown.
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                inner.probe_started = None;
                self.transitions.fetch_add(1, Ordering::Relaxed);
                true
            }
            // Late failure reports from requests admitted before the trip.
            BreakerState::Open => false,
        }
    }

    /// Current state (for `/healthz` and `/metrics`).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock").state
    }

    /// Total state transitions since startup.
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(30),
        })
    }

    #[test]
    fn trips_after_threshold_and_recovers_via_probe() {
        let b = fast();
        assert_eq!(b.admit(), Admission::Allow);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Admission::Reject, "open rejects immediately");

        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(b.admit(), Admission::Probe, "cooldown admits one probe");
        assert_eq!(b.admit(), Admission::Reject, "but only one");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Allow);
    }

    #[test]
    fn failed_probe_reopens_and_successes_reset_the_count() {
        let b = fast();
        for _ in 0..3 {
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(b.admit(), Admission::Probe);
        assert!(b.record_failure(), "failed probe re-trips");
        assert_eq!(b.state(), BreakerState::Open);

        // Interleaved successes keep a flaky-but-alive store closed.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(b.admit(), Admission::Probe);
        b.record_success();
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "never 3 in a row");
        assert!(b.transitions() >= 4);
    }

    #[test]
    fn a_lost_probe_does_not_wedge_half_open() {
        let b = fast();
        for _ in 0..3 {
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(b.admit(), Admission::Probe);
        // The probe's handler dies without reporting…
        std::thread::sleep(Duration::from_millis(40));
        // …and after another cooldown the slot is re-issued.
        assert_eq!(b.admit(), Admission::Probe);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
