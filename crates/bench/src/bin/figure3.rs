//! Regenerates Figure 3: latent interpolation from "jimmy91" to "123456".

use passflow_bench::{emit, prepare, scale_from_env};
use passflow_eval::figures;

fn main() -> passflow_core::Result<()> {
    let workbench = prepare(scale_from_env())?;
    let table = figures::figure3(&workbench, "jimmy91", "123456", 12)?;
    emit(&table, "figure3");
    Ok(())
}
