/root/repo/target/debug/examples/strength_meter-a73f177c5d99cc8d.d: examples/strength_meter.rs

/root/repo/target/debug/examples/strength_meter-a73f177c5d99cc8d: examples/strength_meter.rs

examples/strength_meter.rs:
