/root/repo/target/debug/deps/table3-c4519a6a5e8e2bd1.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-c4519a6a5e8e2bd1.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
