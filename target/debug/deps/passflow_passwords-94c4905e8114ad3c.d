/root/repo/target/debug/deps/passflow_passwords-94c4905e8114ad3c.d: crates/passwords/src/lib.rs crates/passwords/src/alphabet.rs crates/passwords/src/dataset.rs crates/passwords/src/encoding.rs crates/passwords/src/generator.rs crates/passwords/src/stats.rs crates/passwords/src/wordlists.rs

/root/repo/target/debug/deps/passflow_passwords-94c4905e8114ad3c: crates/passwords/src/lib.rs crates/passwords/src/alphabet.rs crates/passwords/src/dataset.rs crates/passwords/src/encoding.rs crates/passwords/src/generator.rs crates/passwords/src/stats.rs crates/passwords/src/wordlists.rs

crates/passwords/src/lib.rs:
crates/passwords/src/alphabet.rs:
crates/passwords/src/dataset.rs:
crates/passwords/src/encoding.rs:
crates/passwords/src/generator.rs:
crates/passwords/src/stats.rs:
crates/passwords/src/wordlists.rs:
