/root/repo/target/debug/deps/table5-d9c7f25919d9ff0a.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-d9c7f25919d9ff0a: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
