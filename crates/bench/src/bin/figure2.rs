//! Regenerates Figure 2: t-SNE projection of latent neighbourhoods around
//! the pivot passwords "jaram" and "royal".

use passflow_bench::{emit, prepare, scale_from_env};
use passflow_eval::figures;

fn main() -> passflow_core::Result<()> {
    let workbench = prepare(scale_from_env())?;
    let table = figures::figure2(&workbench, &["jaram", "royal"], 40, 200)?;
    emit(&table, "figure2");
    Ok(())
}
