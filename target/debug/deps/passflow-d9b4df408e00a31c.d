/root/repo/target/debug/deps/passflow-d9b4df408e00a31c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpassflow-d9b4df408e00a31c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
