//! Error type for the PassFlow core crate.

use std::fmt;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, FlowError>;

/// Errors surfaced by the PassFlow public API.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// A password could not be encoded by the flow's encoder (too long or
    /// containing characters outside the alphabet).
    UnencodablePassword(String),
    /// A latent vector or feature vector had the wrong dimensionality.
    DimensionMismatch {
        /// Expected dimensionality (the flow's `max_len`).
        expected: usize,
        /// Dimensionality that was provided.
        actual: usize,
    },
    /// The training set was empty or became empty after encoding.
    EmptyTrainingSet,
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// Training diverged (non-finite loss).
    Diverged {
        /// Epoch at which divergence was detected.
        epoch: usize,
    },
    /// Serialized weights are incompatible with the current architecture.
    IncompatibleWeights(String),
    /// The guessing strategy needs latent-space access (dynamic sampling or
    /// Gaussian smoothing), but the guesser does not implement
    /// [`LatentGuesser`](crate::LatentGuesser).
    LatentAccessRequired {
        /// Label of the strategy that needed latent access.
        strategy: String,
        /// Name of the guesser that lacks it.
        guesser: String,
    },
    /// An attack checkpoint (`PFATTACK v1`) or guess archive could not be
    /// written, read or parsed: I/O failures, truncation, checksum or
    /// layout corruption.
    AttackPersistence(String),
    /// A resumed attack was configured differently from the attack that
    /// wrote the checkpoint. Resuming with mismatched knobs would silently
    /// change the outcome, so every divergence is a hard error.
    CheckpointMismatch {
        /// Which knob diverged (e.g. `"budget"`, `"seed"`, `"strategy"`).
        field: String,
        /// The value recorded in the checkpoint.
        checkpoint: String,
        /// The value the resuming attack requested.
        requested: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::UnencodablePassword(p) => {
                write!(f, "password {p:?} cannot be encoded by this flow")
            }
            FlowError::DimensionMismatch { expected, actual } => {
                write!(f, "expected dimension {expected}, got {actual}")
            }
            FlowError::EmptyTrainingSet => write!(f, "training set is empty after encoding"),
            FlowError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FlowError::Diverged { epoch } => {
                write!(f, "training diverged (non-finite loss) at epoch {epoch}")
            }
            FlowError::IncompatibleWeights(msg) => write!(f, "incompatible weights: {msg}"),
            FlowError::LatentAccessRequired { strategy, guesser } => {
                write!(
                    f,
                    "strategy {strategy:?} requires latent access, but guesser {guesser:?} has none"
                )
            }
            FlowError::AttackPersistence(msg) => {
                write!(f, "attack persistence failed: {msg}")
            }
            FlowError::CheckpointMismatch {
                field,
                checkpoint,
                requested,
            } => {
                write!(
                    f,
                    "checkpoint mismatch on {field}: checkpoint has {checkpoint}, resume requested {requested}"
                )
            }
        }
    }
}

impl std::error::Error for FlowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(FlowError, &str)> = vec![
            (
                FlowError::UnencodablePassword("héllo".into()),
                "cannot be encoded",
            ),
            (
                FlowError::DimensionMismatch {
                    expected: 10,
                    actual: 8,
                },
                "expected dimension 10",
            ),
            (FlowError::EmptyTrainingSet, "empty"),
            (FlowError::InvalidConfig("bad".into()), "bad"),
            (FlowError::Diverged { epoch: 3 }, "epoch 3"),
            (FlowError::IncompatibleWeights("n".into()), "incompatible"),
            (
                FlowError::LatentAccessRequired {
                    strategy: "PassFlow-Dynamic".into(),
                    guesser: "Markov".into(),
                },
                "requires latent access",
            ),
            (
                FlowError::AttackPersistence("bad magic".into()),
                "attack persistence failed",
            ),
            (
                FlowError::CheckpointMismatch {
                    field: "budget".into(),
                    checkpoint: "5000".into(),
                    requested: "6000".into(),
                },
                "checkpoint mismatch on budget",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg} should contain {needle}");
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowError>();
    }
}
