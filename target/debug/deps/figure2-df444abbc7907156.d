/root/repo/target/debug/deps/figure2-df444abbc7907156.d: crates/bench/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-df444abbc7907156.rmeta: crates/bench/src/bin/figure2.rs Cargo.toml

crates/bench/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
