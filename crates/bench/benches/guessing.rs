//! Macro-benchmarks of the guessing attack loop — the operation behind
//! Tables II and III — for each of the paper's strategies, plus the baseline
//! guessers' generation throughput.
//!
//! Budgets are kept small (the point is relative cost per strategy, not the
//! paper's absolute 10⁸-guess runs); the experiment binaries in
//! `src/bin/` regenerate the actual tables.

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use passflow_baselines::{MarkovModel, PcfgModel};
use passflow_core::{
    train, Attack, DynamicParams, FlowConfig, GaussianSmoothing, Guesser, GuessingStrategy,
    PassFlow, TrainConfig,
};
use passflow_nn::rng as nnrng;
use passflow_passwords::{CorpusConfig, CorpusSplit, SyntheticCorpusGenerator};

struct Fixture {
    flow: PassFlow,
    split: CorpusSplit,
    targets: HashSet<String>,
}

fn fixture() -> Fixture {
    let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(6_000)).generate(21);
    let split = corpus.paper_split(0.8, 2_000, 21);
    let mut rng = nnrng::seeded(22);
    let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).expect("valid config");
    train(
        &flow,
        &split.train,
        &TrainConfig::tiny().with_epochs(3).with_batch_size(256),
    )
    .expect("training succeeds");
    let targets = split.test_set();
    Fixture {
        flow,
        split,
        targets,
    }
}

fn bench_flow_strategies(c: &mut Criterion) {
    let fixture = fixture();
    let budget = 2_000u64;
    let params = DynamicParams::paper_defaults(budget);
    let strategies = [
        ("static", GuessingStrategy::Static),
        ("dynamic", GuessingStrategy::Dynamic(params)),
        (
            "dynamic_gs",
            GuessingStrategy::DynamicWithSmoothing {
                params,
                smoothing: GaussianSmoothing::default(),
            },
        ),
    ];

    let mut group = c.benchmark_group("attack_2000_guesses");
    group.sample_size(10);
    group.throughput(Throughput::Elements(budget));
    for (label, strategy) in strategies {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    Attack::new(&fixture.targets)
                        .budget(budget)
                        .strategy(strategy.clone())
                        .run(&fixture.flow)
                        .expect("flow attacks always run")
                })
            },
        );
    }
    group.finish();
}

/// The engine's sharding knob: the same static attack on 1, 2, 4 and 8
/// shards (identical results, different wall-clock).
fn bench_shard_scaling(c: &mut Criterion) {
    let fixture = fixture();
    let budget = 4_000u64;
    let mut group = c.benchmark_group("attack_4000_static_shards");
    group.sample_size(10);
    group.throughput(Throughput::Elements(budget));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    Attack::new(&fixture.targets)
                        .budget(budget)
                        .shards(shards)
                        .run(&fixture.flow)
                        .expect("flow attacks always run")
                })
            },
        );
    }
    group.finish();
}

fn bench_baseline_generation(c: &mut Criterion) {
    let fixture = fixture();
    let markov = MarkovModel::train(&fixture.split.train, 3, 10);
    let pcfg = PcfgModel::train(&fixture.split.train, 10);

    let mut group = c.benchmark_group("baseline_generate_2000");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2_000));
    group.bench_function("markov", |b| {
        let mut rng = nnrng::seeded(31);
        b.iter(|| markov.generate_batch(2_000, &mut rng))
    });
    group.bench_function("pcfg", |b| {
        let mut rng = nnrng::seeded(32);
        b.iter(|| pcfg.generate_batch(2_000, &mut rng))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_flow_strategies,
    bench_shard_scaling,
    bench_baseline_generation
);
criterion_main!(benches);
