//! Conditional password guessing (the paper's Section VII future work).
//!
//! The paper notes that plain generative flows cannot directly perform
//! *conditional* guessing — completing a partially known password such as
//! `"jimmy**"` — and leaves conditional normalizing flows to future work.
//! This module implements the latent-space workaround that the flow's own
//! properties make possible today: because every (fully specified) candidate
//! has an exact latent representation and an exact likelihood, a template
//! can be completed by iteratively exploring the latent neighbourhood of
//! template-consistent seeds and ranking the survivors by model likelihood.
//!
//! The search is a form of dynamic sampling conditioned on the template:
//! candidates that satisfy the template become new pivots, concentrating the
//! search in the region of the latent space where consistent, high-density
//! passwords live.

use std::collections::HashSet;

use rand::Rng;

use crate::error::{FlowError, Result};
use crate::flow::PassFlow;
use passflow_nn::Tensor;

/// A partially known password: known characters plus wildcard positions.
///
/// Templates are written with `*` as the wildcard, e.g. `"jimmy**"` (a
/// 7-character password starting with "jimmy") or `"*assword"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PasswordTemplate {
    slots: Vec<Option<char>>,
}

impl PasswordTemplate {
    /// Parses a template string using `*` as the wildcard character.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] if the template is empty or has
    /// no wildcard (a fully specified template is just a password).
    pub fn parse(template: &str) -> Result<Self> {
        Self::parse_with_wildcard(template, '*')
    }

    /// Parses a template with a custom wildcard character.
    ///
    /// # Errors
    ///
    /// See [`PasswordTemplate::parse`].
    pub fn parse_with_wildcard(template: &str, wildcard: char) -> Result<Self> {
        if template.is_empty() {
            return Err(FlowError::InvalidConfig(
                "template must not be empty".into(),
            ));
        }
        let slots: Vec<Option<char>> = template
            .chars()
            .map(|c| if c == wildcard { None } else { Some(c) })
            .collect();
        if slots.iter().all(Option::is_some) {
            return Err(FlowError::InvalidConfig(
                "template has no wildcard positions".into(),
            ));
        }
        Ok(PasswordTemplate { slots })
    }

    /// Template length in characters.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` for the (unconstructible) empty template; present for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of unknown (wildcard) positions.
    pub fn num_wildcards(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// Returns `true` if `candidate` is consistent with the template: same
    /// length and matching characters at every known position.
    pub fn matches(&self, candidate: &str) -> bool {
        let chars: Vec<char> = candidate.chars().collect();
        if chars.len() != self.slots.len() {
            return false;
        }
        self.slots
            .iter()
            .zip(chars.iter())
            .all(|(slot, c)| slot.is_none_or(|known| known == *c))
    }

    /// Fills the wildcard positions with characters drawn uniformly from the
    /// flow's alphabet, producing a fully specified seed password.
    fn random_fill<R: Rng + ?Sized>(&self, flow: &PassFlow, rng: &mut R) -> String {
        let alphabet: Vec<char> = flow.encoder().alphabet().iter().collect();
        self.slots
            .iter()
            .map(|slot| match slot {
                Some(c) => *c,
                None => alphabet[rng.gen_range(0..alphabet.len())],
            })
            .collect()
    }
}

/// Configuration of the conditional guessing search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConditionalConfig {
    /// Number of random template fillings used to seed the search.
    pub num_seeds: usize,
    /// Latent samples drawn around each active pivot per round.
    pub samples_per_round: usize,
    /// Number of refinement rounds.
    pub rounds: usize,
    /// Standard deviation of the latent neighbourhood that is explored.
    pub sigma: f32,
}

impl Default for ConditionalConfig {
    fn default() -> Self {
        ConditionalConfig {
            num_seeds: 16,
            samples_per_round: 256,
            rounds: 4,
            sigma: 0.15,
        }
    }
}

/// A template completion proposed by [`conditional_guess`], ranked by the
/// flow's exact log-likelihood.
#[derive(Clone, Debug, PartialEq)]
pub struct ConditionalGuess {
    /// The completed password (consistent with the template).
    pub password: String,
    /// Exact log-likelihood under the flow.
    pub log_prob: f32,
}

/// Completes a partially known password by exploring the latent space.
///
/// Returns up to `max_results` template-consistent completions sorted by
/// decreasing model likelihood. The list may be shorter (or empty) when the
/// search finds few consistent candidates — e.g. for templates much longer
/// than the passwords the model was trained on.
///
/// # Errors
///
/// Returns [`FlowError::InvalidConfig`] if the template is longer than the
/// flow's maximum password length or contains characters outside the
/// alphabet.
pub fn conditional_guess<R: Rng + ?Sized>(
    flow: &PassFlow,
    template: &PasswordTemplate,
    config: &ConditionalConfig,
    max_results: usize,
    rng: &mut R,
) -> Result<Vec<ConditionalGuess>> {
    if template.len() > flow.encoder().max_len() {
        return Err(FlowError::InvalidConfig(format!(
            "template length {} exceeds the flow's maximum password length {}",
            template.len(),
            flow.encoder().max_len()
        )));
    }
    for c in template.slots.iter().flatten() {
        if flow.encoder().alphabet().index_of(*c).is_none() {
            return Err(FlowError::InvalidConfig(format!(
                "template character {c:?} is outside the flow's alphabet"
            )));
        }
    }

    // Seed pivots: random fillings of the template mapped into latent space.
    let mut pivots: Vec<Vec<f32>> = Vec::new();
    for _ in 0..config.num_seeds.max(1) {
        let seed = template.random_fill(flow, rng);
        if let Some(z) = flow.latent_of(&seed) {
            pivots.push(z);
        }
    }
    if pivots.is_empty() {
        return Err(FlowError::UnencodablePassword(
            "no template filling could be encoded".into(),
        ));
    }

    let dim = flow.dim();
    let mut seen: HashSet<String> = HashSet::new();
    let mut consistent: Vec<ConditionalGuess> = Vec::new();

    for _round in 0..config.rounds.max(1) {
        // Sample around every active pivot.
        let per_pivot = (config.samples_per_round / pivots.len().max(1)).max(1);
        let mut batch = Tensor::zeros(per_pivot * pivots.len(), dim);
        let mut row = 0usize;
        for pivot in &pivots {
            for _ in 0..per_pivot {
                for (j, &c) in pivot.iter().enumerate() {
                    batch.set(
                        row,
                        j,
                        c + config.sigma * passflow_nn::rng::standard_normal(rng),
                    );
                }
                row += 1;
            }
        }
        let decoded = flow.decode_batch(&flow.inverse(&batch));

        // Keep template-consistent candidates; they become the next round's
        // pivots (conditioning the search on the evidence gathered so far).
        let mut next_pivots: Vec<Vec<f32>> = Vec::new();
        for (i, candidate) in decoded.iter().enumerate() {
            if !template.matches(candidate) || !seen.insert(candidate.clone()) {
                continue;
            }
            if let Some(log_prob) = flow.log_prob_password(candidate) {
                consistent.push(ConditionalGuess {
                    password: candidate.clone(),
                    log_prob,
                });
                next_pivots.push(batch.row_slice(i).to_vec());
            }
        }
        if !next_pivots.is_empty() {
            pivots = next_pivots;
        }
    }

    consistent.sort_by(|a, b| {
        b.log_prob
            .partial_cmp(&a.log_prob)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    consistent.truncate(max_results);
    Ok(consistent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use passflow_nn::rng as nnrng;

    fn tiny_flow(seed: u64) -> PassFlow {
        let mut rng = nnrng::seeded(seed);
        PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn template_parsing_and_matching() {
        let t = PasswordTemplate::parse("jimmy**").unwrap();
        assert_eq!(t.len(), 7);
        assert_eq!(t.num_wildcards(), 2);
        assert!(!t.is_empty());
        assert!(t.matches("jimmy91"));
        assert!(t.matches("jimmyab"));
        assert!(!t.matches("jimmy9")); // wrong length
        assert!(!t.matches("jammy91")); // wrong known char
        let custom = PasswordTemplate::parse_with_wildcard("ab?cd", '?').unwrap();
        assert_eq!(custom.num_wildcards(), 1);
        assert!(custom.matches("abXcd"));
    }

    #[test]
    fn invalid_templates_are_rejected() {
        assert!(matches!(
            PasswordTemplate::parse(""),
            Err(FlowError::InvalidConfig(_))
        ));
        assert!(matches!(
            PasswordTemplate::parse("nostars"),
            Err(FlowError::InvalidConfig(_))
        ));
    }

    #[test]
    fn conditional_guesses_respect_the_template() {
        let flow = tiny_flow(1);
        let template = PasswordTemplate::parse("ji***1").unwrap();
        let mut rng = nnrng::seeded(2);
        let guesses = conditional_guess(
            &flow,
            &template,
            &ConditionalConfig {
                num_seeds: 8,
                samples_per_round: 128,
                rounds: 3,
                sigma: 0.3,
            },
            20,
            &mut rng,
        )
        .unwrap();
        for guess in &guesses {
            assert!(template.matches(&guess.password), "bad guess {guess:?}");
            assert!(guess.log_prob.is_finite());
        }
        // Results are sorted by decreasing likelihood and deduplicated.
        for pair in guesses.windows(2) {
            assert!(pair[0].log_prob >= pair[1].log_prob);
            assert_ne!(pair[0].password, pair[1].password);
        }
    }

    #[test]
    fn too_long_templates_and_foreign_characters_are_rejected() {
        let flow = tiny_flow(3);
        let mut rng = nnrng::seeded(4);
        let too_long = PasswordTemplate::parse("abcdefghij*").unwrap();
        assert!(
            conditional_guess(&flow, &too_long, &ConditionalConfig::default(), 5, &mut rng)
                .is_err()
        );
        let foreign = PasswordTemplate::parse("pässw*rd").unwrap();
        assert!(
            conditional_guess(&flow, &foreign, &ConditionalConfig::default(), 5, &mut rng).is_err()
        );
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let flow = tiny_flow(5);
        let template = PasswordTemplate::parse("a**").unwrap();
        let config = ConditionalConfig {
            num_seeds: 4,
            samples_per_round: 64,
            rounds: 2,
            sigma: 0.4,
        };
        let a = conditional_guess(&flow, &template, &config, 10, &mut nnrng::seeded(9)).unwrap();
        let b = conditional_guess(&flow, &template, &config, 10, &mut nnrng::seeded(9)).unwrap();
        assert_eq!(a, b);
    }
}
