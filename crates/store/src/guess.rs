//! `PFGUESS v1` — sorted, prefix-compressed, mergeable guess archives.
//!
//! A guess archive is the on-disk form of an attack run's dedup set: every
//! distinct guess the engine emitted, sorted in byte order, with the number
//! of times it was produced. Where `PFDIGEST v1` keys records by fixed-width
//! truncated SHA-1 digests, `PFGUESS v1` keys them by the raw guess bytes —
//! variable-length, prefix-compressed within blocks, with a trailing index
//! for seek-free range extraction (the `twobit.rs` idiom: jump to the block
//! that could hold a prefix, decode forward, stop at the successor key).
//!
//! The format shares the `PFDIGEST` discipline exactly:
//!
//! * records are **strictly ascending**; building is a bounded-memory
//!   external merge sort ([`GuessArchiveBuilder`]);
//! * the artifact is a **pure function of the record multiset and config**,
//!   so [`merge_archives`] over any merge tree — pairwise, 4-way, reversed —
//!   produces a file byte-identical to a single-pass build over the union
//!   (asserted with `fs::read` equality in `tests/store.rs`);
//! * writes land via a `.tmp` sibling and an atomic rename; a crashed build
//!   leaves nothing behind.
//!
//! The block codec is also exposed as a headerless stream
//! ([`GuessStreamWriter`] / [`GuessStreamReader`]): spill runs use it, and
//! `passflow-core` embeds the same stream inside `PFATTACK v1` checkpoints
//! to persist the engine's dedup-set state compactly.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::builder::DEFAULT_MEMORY_RECORDS;
use crate::format::{fnv1a, format_err, read_varint, write_varint, FNV_SEED};
use crate::format::{Result, StoreError, VerifyReport};
use crate::io::{read_exact_at, FaultyWrite, FileIo, RetryPolicy, ScratchFile, StoreIo};
use crate::merge::{merge_keyed, KeyedSource};

/// Artifact magic: `PFGUESS` + NUL.
const MAGIC: &[u8; 8] = b"PFGUESS\0";
/// Format version the code reads and writes.
const VERSION: u32 = 1;
/// Fixed header size; blocks start right after it.
const HEADER_LEN: u64 = 64;
/// Corruption guard: no sane guess is longer than this.
pub const MAX_GUESS_LEN: usize = 1 << 16;

/// Tuning knobs baked into a guess archive's header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GuessConfig {
    /// Whether per-guess emission counts are stored. Without counts every
    /// lookup reports a count of 1 (pure membership).
    pub counts: bool,
    /// Records per compressed block — the random-access granularity.
    pub records_per_block: usize,
}

impl Default for GuessConfig {
    fn default() -> Self {
        GuessConfig {
            counts: true,
            records_per_block: 1024,
        }
    }
}

impl GuessConfig {
    /// Checks the invariants enforced on both write and load.
    ///
    /// # Errors
    ///
    /// [`StoreError::Format`] when `records_per_block` is zero or does not
    /// fit in a `u32`.
    pub fn validate(&self) -> Result<()> {
        if self.records_per_block == 0 || self.records_per_block > u32::MAX as usize {
            return format_err("records_per_block must be positive and fit in u32");
        }
        Ok(())
    }
}

/// Summary of a finished guess archive.
#[derive(Clone, Copy, Debug)]
pub struct GuessStats {
    /// Unique guesses written.
    pub record_count: u64,
    /// Blocks written.
    pub block_count: u64,
    /// Total artifact size in bytes.
    pub bytes: u64,
}

/// Folds one served record into the running checksum. The length is hashed
/// first so `("ab", "c")` and `("a", "bc")` cannot collide; the count
/// hashed is the count a reader will *see* (1 when counts are disabled).
fn checksum_guess(hash: u64, guess: &[u8], count: u64) -> u64 {
    let h = fnv1a(hash, &(guess.len() as u64).to_le_bytes());
    fnv1a(fnv1a(h, guess), &count.to_le_bytes())
}

/// Shared prefix length of two byte strings.
fn shared_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

// ---------------------------------------------------------------------------
// Headerless record stream (spill runs, PFATTACK embedding)
// ---------------------------------------------------------------------------

/// Writes the `PFGUESS` record codec as a headerless continuous stream:
/// every record is `varint(shared) · varint(suffix_len) · suffix`
/// (`· varint(count)` when counts are on), prefix-compressed against its
/// predecessor. Spill runs and the dedup-set section of `PFATTACK v1`
/// checkpoints are exactly this stream.
pub struct GuessStreamWriter<W: Write> {
    out: W,
    counts: bool,
    prev: Vec<u8>,
    started: bool,
    records: u64,
    checksum: u64,
    scratch: Vec<u8>,
}

impl<W: Write> GuessStreamWriter<W> {
    /// Starts a stream over `out`.
    pub fn new(out: W, counts: bool) -> GuessStreamWriter<W> {
        GuessStreamWriter {
            out,
            counts,
            prev: Vec::new(),
            started: false,
            records: 0,
            checksum: FNV_SEED,
            scratch: Vec::new(),
        }
    }

    /// Appends one record. A zero `count` is stored as 1.
    ///
    /// # Errors
    ///
    /// Rejects records not strictly greater than their predecessor,
    /// over-long guesses, and I/O failures.
    pub fn push(&mut self, guess: &[u8], count: u64) -> Result<()> {
        if guess.len() > MAX_GUESS_LEN {
            return format_err(format!(
                "guess is {} bytes, limit is {MAX_GUESS_LEN}",
                guess.len()
            ));
        }
        if self.started && guess <= self.prev.as_slice() {
            return format_err(format!(
                "records must be strictly ascending ({guess:?} after {:?})",
                self.prev
            ));
        }
        let shared = if self.started {
            shared_prefix(guess, &self.prev)
        } else {
            0
        };
        let served = if self.counts { count.max(1) } else { 1 };
        self.scratch.clear();
        write_varint(&mut self.scratch, shared as u64);
        write_varint(&mut self.scratch, (guess.len() - shared) as u64);
        self.scratch.extend_from_slice(&guess[shared..]);
        if self.counts {
            write_varint(&mut self.scratch, served);
        }
        self.out.write_all(&self.scratch)?;
        self.checksum = checksum_guess(self.checksum, guess, served);
        self.prev.clear();
        self.prev.extend_from_slice(guess);
        self.started = true;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Running FNV-1a checksum of the served records.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn flush(&mut self) -> Result<()> {
        self.out.flush()?;
        Ok(())
    }
}

/// Reads back a [`GuessStreamWriter`] stream. A clean EOF at a record
/// boundary ends the stream; EOF mid-record is a format error. Embedded
/// users (checkpoint payloads) instead read exactly the record count they
/// persisted and never rely on EOF.
pub struct GuessStreamReader<R: BufRead> {
    input: R,
    counts: bool,
    prev: Vec<u8>,
    records: u64,
    checksum: u64,
}

impl<R: BufRead> GuessStreamReader<R> {
    /// Starts reading a stream from `input`.
    pub fn new(input: R, counts: bool) -> GuessStreamReader<R> {
        GuessStreamReader {
            input,
            counts,
            prev: Vec::new(),
            records: 0,
            checksum: FNV_SEED,
        }
    }

    /// One byte, absorbing EINTR; `None` at EOF.
    fn read_byte(&mut self) -> Result<Option<u8>> {
        let mut byte = [0u8; 1];
        loop {
            match self.input.read(&mut byte) {
                Ok(0) => return Ok(None),
                Ok(_) => return Ok(Some(byte[0])),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// A varint whose *first* byte may hit EOF (record boundary).
    fn read_varint_opt(&mut self) -> Result<Option<u64>> {
        let Some(first) = self.read_byte()? else {
            return Ok(None);
        };
        let mut v = u64::from(first & 0x7f);
        if first & 0x80 == 0 {
            return Ok(Some(v));
        }
        for shift in (7..64).step_by(7) {
            let Some(byte) = self.read_byte()? else {
                return format_err("truncated varint in guess stream");
            };
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(Some(v));
            }
        }
        format_err("varint longer than 64 bits in guess stream")
    }

    /// A varint that must be present.
    fn read_varint(&mut self) -> Result<u64> {
        match self.read_varint_opt()? {
            Some(v) => Ok(v),
            None => format_err("unexpected EOF inside a guess record"),
        }
    }

    /// The next record, or `None` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// I/O failures and structural corruption (truncated records, shared
    /// prefixes longer than the predecessor, over-long guesses).
    pub fn next_guess(&mut self) -> Result<Option<(Vec<u8>, u64)>> {
        let Some(shared) = self.read_varint_opt()? else {
            return Ok(None);
        };
        let shared = shared as usize;
        let suffix_len = self.read_varint()? as usize;
        if shared > self.prev.len() {
            return format_err("shared prefix longer than the previous guess");
        }
        if shared + suffix_len > MAX_GUESS_LEN {
            return format_err(format!(
                "guess longer than the {MAX_GUESS_LEN}-byte limit (corrupted stream?)"
            ));
        }
        self.prev.truncate(shared);
        self.prev.resize(shared + suffix_len, 0);
        let mut done = 0usize;
        while done < suffix_len {
            match self.input.read(&mut self.prev[shared + done..]) {
                Ok(0) => return format_err("unexpected EOF inside a guess record"),
                Ok(n) => done += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        let count = if self.counts { self.read_varint()? } else { 1 };
        self.records += 1;
        self.checksum = checksum_guess(self.checksum, &self.prev, count);
        Ok(Some((self.prev.clone(), count)))
    }

    /// Records decoded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Running FNV-1a checksum of the decoded records.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }
}

// ---------------------------------------------------------------------------
// Header + index
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Header {
    config: GuessConfig,
    record_count: u64,
    block_count: u64,
    index_offset: u64,
    checksum: u64,
}

impl Header {
    fn encode(&self) -> [u8; HEADER_LEN as usize] {
        let mut out = [0u8; HEADER_LEN as usize];
        out[..8].copy_from_slice(MAGIC);
        out[8..12].copy_from_slice(&VERSION.to_le_bytes());
        out[12] = u8::from(self.config.counts);
        out[16..20].copy_from_slice(&(self.config.records_per_block as u32).to_le_bytes());
        out[24..32].copy_from_slice(&self.record_count.to_le_bytes());
        out[32..40].copy_from_slice(&self.block_count.to_le_bytes());
        out[40..48].copy_from_slice(&self.index_offset.to_le_bytes());
        out[48..56].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    fn decode(raw: &[u8]) -> Result<Header> {
        if raw.len() < HEADER_LEN as usize {
            return format_err("file shorter than the PFGUESS header");
        }
        if &raw[..8] != MAGIC {
            return format_err("bad magic (not a PFGUESS archive)");
        }
        let version = u32::from_le_bytes(raw[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return format_err(format!("unsupported PFGUESS version {version}"));
        }
        let config = GuessConfig {
            counts: match raw[12] {
                0 => false,
                1 => true,
                other => return format_err(format!("bad counts flag {other}")),
            },
            records_per_block: u32::from_le_bytes(raw[16..20].try_into().expect("4 bytes"))
                as usize,
        };
        config.validate()?;
        Ok(Header {
            config,
            record_count: u64::from_le_bytes(raw[24..32].try_into().expect("8 bytes")),
            block_count: u64::from_le_bytes(raw[32..40].try_into().expect("8 bytes")),
            index_offset: u64::from_le_bytes(raw[40..48].try_into().expect("8 bytes")),
            checksum: u64::from_le_bytes(raw[48..56].try_into().expect("8 bytes")),
        })
    }
}

/// One block's entry in the in-memory index. Unlike `PFDIGEST` entries the
/// first key is variable-length, so entries are decoded sequentially.
#[derive(Clone, Debug)]
struct IndexEntry {
    /// First guess in the block.
    first: Vec<u8>,
    /// Absolute file offset of the encoded block.
    offset: u64,
    /// Encoded byte length of the block.
    len: u32,
    /// Records in the block.
    records: u32,
}

impl IndexEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.first.len() as u64);
        out.extend_from_slice(&self.first);
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.records.to_le_bytes());
    }

    fn decode(raw: &[u8], pos: &mut usize) -> Result<IndexEntry> {
        let first_len = read_varint(raw, pos)? as usize;
        if first_len > MAX_GUESS_LEN {
            return format_err("index first-key longer than the guess limit");
        }
        let Some(first) = raw.get(*pos..*pos + first_len) else {
            return format_err("truncated index first-key");
        };
        let first = first.to_vec();
        *pos += first_len;
        let Some(fixed) = raw.get(*pos..*pos + 16) else {
            return format_err("truncated index entry");
        };
        let entry = IndexEntry {
            first,
            offset: u64::from_le_bytes(fixed[..8].try_into().expect("8 bytes")),
            len: u32::from_le_bytes(fixed[8..12].try_into().expect("4 bytes")),
            records: u32::from_le_bytes(fixed[12..16].try_into().expect("4 bytes")),
        };
        *pos += 16;
        Ok(entry)
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streams a **strictly ascending** guess sequence into an archive.
///
/// Mirrors [`crate::format::ArtifactWriter`]: blocks are encoded as records
/// arrive, the index accumulates in memory, and [`finish`](Self::finish)
/// appends the index, patches the header and atomically renames a `.tmp`
/// sibling over the target path.
pub struct GuessArchiveWriter {
    file: BufWriter<File>,
    config: GuessConfig,
    block: Vec<u8>,
    block_first: Vec<u8>,
    block_records: u32,
    prev: Vec<u8>,
    started: bool,
    index: Vec<IndexEntry>,
    offset: u64,
    record_count: u64,
    checksum: u64,
    tmp_path: PathBuf,
    final_path: PathBuf,
    finished: bool,
}

impl GuessArchiveWriter {
    /// Opens a writer targeting `path` (written via a `.tmp` sibling).
    ///
    /// # Errors
    ///
    /// Invalid config or file-creation failures.
    pub fn create(path: impl AsRef<Path>, config: GuessConfig) -> Result<GuessArchiveWriter> {
        config.validate()?;
        let final_path = path.as_ref().to_path_buf();
        let mut tmp_os = final_path.clone().into_os_string();
        tmp_os.push(".tmp");
        let tmp_path = PathBuf::from(tmp_os);
        let mut file = BufWriter::new(File::create(&tmp_path)?);
        // Placeholder header; patched in finish() once totals are known.
        file.write_all(&[0u8; HEADER_LEN as usize])?;
        Ok(GuessArchiveWriter {
            file,
            config,
            block: Vec::new(),
            block_first: Vec::new(),
            block_records: 0,
            prev: Vec::new(),
            started: false,
            index: Vec::new(),
            offset: HEADER_LEN,
            record_count: 0,
            checksum: FNV_SEED,
            tmp_path,
            final_path,
            finished: false,
        })
    }

    /// Appends one guess. A zero `count` is stored as 1.
    ///
    /// # Errors
    ///
    /// Rejects guesses that are not strictly greater (in byte order) than
    /// their predecessor, over-long guesses, and I/O failures.
    pub fn push(&mut self, guess: &str, count: u64) -> Result<()> {
        self.push_bytes(guess.as_bytes(), count)
    }

    /// Appends one record keyed by raw bytes (the merge-path entry point).
    ///
    /// # Errors
    ///
    /// As [`push`](Self::push).
    pub fn push_bytes(&mut self, guess: &[u8], count: u64) -> Result<()> {
        if guess.len() > MAX_GUESS_LEN {
            return format_err(format!(
                "guess is {} bytes, limit is {MAX_GUESS_LEN}",
                guess.len()
            ));
        }
        if self.started && guess <= self.prev.as_slice() {
            return format_err(format!(
                "records must be strictly ascending ({guess:?} after {:?})",
                self.prev
            ));
        }
        let served = if self.config.counts { count.max(1) } else { 1 };

        if self.block_records == 0 {
            self.block_first.clear();
            self.block_first.extend_from_slice(guess);
            write_varint(&mut self.block, guess.len() as u64);
            self.block.extend_from_slice(guess);
        } else {
            let shared = shared_prefix(guess, &self.prev);
            write_varint(&mut self.block, shared as u64);
            write_varint(&mut self.block, (guess.len() - shared) as u64);
            self.block.extend_from_slice(&guess[shared..]);
        }
        if self.config.counts {
            write_varint(&mut self.block, served);
        }
        self.checksum = checksum_guess(self.checksum, guess, served);
        self.prev.clear();
        self.prev.extend_from_slice(guess);
        self.started = true;
        self.block_records += 1;
        self.record_count += 1;
        if self.block_records as usize == self.config.records_per_block {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.block_records == 0 {
            return Ok(());
        }
        self.index.push(IndexEntry {
            first: self.block_first.clone(),
            offset: self.offset,
            len: self.block.len() as u32,
            records: self.block_records,
        });
        self.file.write_all(&self.block)?;
        self.offset += self.block.len() as u64;
        self.block.clear();
        self.block_records = 0;
        Ok(())
    }

    /// Flushes the final block, writes the index, patches the header and
    /// renames the archive into place.
    ///
    /// # Errors
    ///
    /// I/O failures; the `.tmp` file is removed on drop if this fails.
    pub fn finish(mut self) -> Result<GuessStats> {
        self.flush_block()?;
        let index_offset = self.offset;
        let mut encoded = Vec::new();
        for entry in &self.index {
            entry.encode(&mut encoded);
        }
        self.file.write_all(&encoded)?;

        let header = Header {
            config: self.config,
            record_count: self.record_count,
            block_count: self.index.len() as u64,
            index_offset,
            checksum: self.checksum,
        };
        self.file.flush()?;
        let file = self.file.get_mut();
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header.encode())?;
        file.sync_all()?;
        std::fs::rename(&self.tmp_path, &self.final_path)?;
        self.finished = true;
        Ok(GuessStats {
            record_count: header.record_count,
            block_count: header.block_count,
            bytes: index_offset + encoded.len() as u64,
        })
    }
}

impl Drop for GuessArchiveWriter {
    fn drop(&mut self) {
        if !self.finished {
            let _ = std::fs::remove_file(&self.tmp_path);
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// An open, random-access `PFGUESS v1` archive.
///
/// The block index lives in memory; record data is read positionally per
/// query through the same pluggable [`StoreIo`] / bounded-retry discipline
/// as [`crate::DigestStore`].
pub struct GuessArchive {
    io: Box<dyn StoreIo>,
    retry: RetryPolicy,
    config: GuessConfig,
    record_count: u64,
    checksum: u64,
    index: Vec<IndexEntry>,
    file_len: u64,
    path: PathBuf,
}

impl std::fmt::Debug for GuessArchive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuessArchive")
            .field("path", &self.path)
            .field("records", &self.record_count)
            .field("blocks", &self.index.len())
            .field("config", &self.config)
            .finish()
    }
}

impl GuessArchive {
    /// Opens an archive, validating the header and loading the index.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`StoreError::Format`] for anything structurally
    /// wrong: bad magic/version/config, truncated file, index out of
    /// bounds or out of order, record counts that do not add up.
    pub fn open(path: impl AsRef<Path>) -> Result<GuessArchive> {
        let io = FileIo::open(path.as_ref())?;
        GuessArchive::open_with_io(path, Box::new(io))
    }

    /// Opens an archive through a caller-supplied [`StoreIo`] — the chaos
    /// seam, exactly as [`crate::DigestStore::open_with_io`].
    ///
    /// # Errors
    ///
    /// As [`GuessArchive::open`], plus [`StoreError::Unavailable`] when the
    /// supplied io cannot complete the header/index reads.
    pub fn open_with_io(path: impl AsRef<Path>, io: Box<dyn StoreIo>) -> Result<GuessArchive> {
        let path = path.as_ref().to_path_buf();
        let retry = RetryPolicy::default();
        let file_len = io.byte_len().map_err(|error| StoreError::Unavailable {
            context: "reading archive length".to_string(),
            error,
        })?;
        if file_len < HEADER_LEN {
            return format_err("file shorter than the PFGUESS header");
        }
        let mut raw_header = [0u8; HEADER_LEN as usize];
        read_exact_at(io.as_ref(), &mut raw_header, 0, &retry).map_err(|error| {
            StoreError::Unavailable {
                context: "reading the PFGUESS header".to_string(),
                error,
            }
        })?;
        let header = Header::decode(&raw_header)?;

        if header.index_offset < HEADER_LEN || header.index_offset > file_len {
            return format_err("index offset outside the file (truncated?)");
        }
        let index_len = file_len - header.index_offset;
        let mut raw_index = vec![0u8; index_len as usize];
        read_exact_at(io.as_ref(), &mut raw_index, header.index_offset, &retry).map_err(
            |error| StoreError::Unavailable {
                context: "reading the block index".to_string(),
                error,
            },
        )?;

        let mut index = Vec::with_capacity(header.block_count as usize);
        let mut total_records = 0u64;
        let mut end_of_prev = HEADER_LEN;
        let mut pos = 0usize;
        for _ in 0..header.block_count {
            let entry = IndexEntry::decode(&raw_index, &mut pos)?;
            if entry.offset != end_of_prev {
                return format_err("block offsets are not contiguous");
            }
            end_of_prev = entry.offset + u64::from(entry.len);
            if end_of_prev > header.index_offset {
                return format_err("block extends past the index");
            }
            if entry.records == 0 || entry.records as usize > header.config.records_per_block {
                return format_err("block record count out of range");
            }
            if let Some(last) = index.last() {
                let last: &IndexEntry = last;
                if entry.first <= last.first {
                    return format_err("index first-guesses are not ascending");
                }
            }
            total_records += u64::from(entry.records);
            index.push(entry);
        }
        if pos != raw_index.len() {
            return format_err("trailing bytes after the last index entry");
        }
        if end_of_prev != header.index_offset {
            return format_err("gap between the last block and the index");
        }
        if total_records != header.record_count {
            return format_err("index record counts disagree with the header");
        }

        Ok(GuessArchive {
            io,
            retry,
            config: header.config,
            record_count: header.record_count,
            checksum: header.checksum,
            index,
            file_len,
            path,
        })
    }

    /// The archive's configuration.
    pub fn config(&self) -> GuessConfig {
        self.config
    }

    /// Unique guesses stored.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Number of compressed blocks.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Total archive size in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The path the archive was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Positioned read with bounded retry; failures surface as
    /// [`StoreError::Unavailable`].
    fn read_at(&self, buf: &mut [u8], offset: u64, context: &str) -> Result<()> {
        read_exact_at(self.io.as_ref(), buf, offset, &self.retry).map_err(|error| {
            StoreError::Unavailable {
                context: context.to_string(),
                error,
            }
        })
    }

    /// Reads and decodes block `i` into `out` (cleared first).
    fn decode_block_into(&self, i: usize, out: &mut Vec<(Vec<u8>, u64)>) -> Result<()> {
        let entry = &self.index[i];
        let mut raw = vec![0u8; entry.len as usize];
        self.read_at(&mut raw, entry.offset, "reading a guess block")?;
        out.clear();
        let mut prev: Vec<u8> = Vec::new();
        let mut pos = 0usize;
        for r in 0..entry.records {
            if r == 0 {
                let len = read_varint(&raw, &mut pos)? as usize;
                if len > MAX_GUESS_LEN {
                    return format_err("first record longer than the guess limit");
                }
                let Some(bytes) = raw.get(pos..pos + len) else {
                    return format_err("block too short for its first record");
                };
                prev = bytes.to_vec();
                pos += len;
            } else {
                let shared = read_varint(&raw, &mut pos)? as usize;
                let suffix_len = read_varint(&raw, &mut pos)? as usize;
                if shared > prev.len() {
                    return format_err("shared prefix longer than the previous guess");
                }
                if shared + suffix_len > MAX_GUESS_LEN {
                    return format_err("record longer than the guess limit");
                }
                let Some(suffix) = raw.get(pos..pos + suffix_len) else {
                    return format_err("truncated record suffix in block");
                };
                prev.truncate(shared);
                prev.extend_from_slice(suffix);
                pos += suffix_len;
            }
            let count = if self.config.counts {
                read_varint(&raw, &mut pos)?
            } else {
                1
            };
            out.push((prev.clone(), count));
        }
        if pos != raw.len() {
            return format_err("trailing bytes after the last record in a block");
        }
        if out.first().map(|(g, _)| g.as_slice()) != Some(entry.first.as_slice()) {
            return format_err("block's first record disagrees with the index");
        }
        Ok(())
    }

    /// Index of the block that could contain `key`, if any.
    fn block_for(&self, key: &[u8]) -> Option<usize> {
        let n = self.index.partition_point(|e| e.first.as_slice() <= key);
        n.checked_sub(1)
    }

    /// Looks up one guess; returns its emission count, or `None` if absent.
    /// Counts are 1 for membership-only archives.
    ///
    /// # Errors
    ///
    /// I/O or block-decoding failures.
    pub fn contains(&self, guess: &str) -> Result<Option<u64>> {
        let key = guess.as_bytes();
        let Some(block) = self.block_for(key) else {
            return Ok(None);
        };
        let mut records = Vec::with_capacity(self.config.records_per_block);
        self.decode_block_into(block, &mut records)?;
        Ok(records
            .binary_search_by(|(g, _)| g.as_slice().cmp(key))
            .ok()
            .map(|i| records[i].1))
    }

    /// Range extraction: every stored guess starting with `prefix`, in
    /// ascending byte order, as `(guess, count)` pairs. Jumps straight to
    /// the first candidate block via the index and stops at the prefix's
    /// byte successor, so cost is proportional to the range, not the
    /// archive.
    ///
    /// # Errors
    ///
    /// I/O or block-decoding failures, or non-UTF-8 record bytes
    /// (corruption: the writer only accepts strings).
    pub fn extract_prefix(&self, prefix: &str) -> Result<Vec<(String, u64)>> {
        let lo = prefix.as_bytes();
        let hi = prefix_successor(lo);
        let mut out = Vec::new();
        let start = self.block_for(lo).unwrap_or(0);
        let mut records = Vec::with_capacity(self.config.records_per_block);
        for i in start..self.index.len() {
            if let Some(hi) = &hi {
                if self.index[i].first.as_slice() >= hi.as_slice() {
                    break;
                }
            }
            self.decode_block_into(i, &mut records)?;
            for (guess, count) in &records {
                if guess.as_slice() < lo {
                    continue;
                }
                if !guess.starts_with(lo) {
                    break;
                }
                let guess = String::from_utf8(guess.clone())
                    .map_err(|_| StoreError::Format("non-UTF-8 guess record".to_string()))?;
                out.push((guess, *count));
            }
        }
        Ok(out)
    }

    /// A streaming cursor over every record in ascending order.
    pub fn records(&self) -> GuessCursor<'_> {
        GuessCursor {
            archive: self,
            block: 0,
            pos: 0,
            records: Vec::new(),
        }
    }

    /// Fully decodes the archive, checking sort order, per-block structure
    /// and the header checksum — the deep integrity pass behind
    /// `guess_archive verify`.
    ///
    /// # Errors
    ///
    /// The first structural violation found.
    pub fn verify(&self) -> Result<VerifyReport> {
        let mut cursor = self.records();
        let mut checksum = FNV_SEED;
        let mut count = 0u64;
        let mut prev: Option<Vec<u8>> = None;
        while let Some((guess, record_count)) = cursor.next_record()? {
            if let Some(p) = &prev {
                if guess.as_slice() <= p.as_slice() {
                    return format_err("records are not strictly ascending across blocks");
                }
            }
            checksum = checksum_guess(checksum, &guess, record_count);
            prev = Some(guess);
            count += 1;
        }
        if count != self.record_count {
            return format_err(format!(
                "decoded {count} records, header claims {}",
                self.record_count
            ));
        }
        if checksum != self.checksum {
            return format_err("record checksum mismatch (archive corrupted)");
        }
        Ok(VerifyReport {
            record_count: count,
            block_count: self.index.len() as u64,
            checksum,
        })
    }
}

/// The smallest byte string greater than every string with prefix `p`
/// (`None` when no upper bound exists — all-0xFF or empty prefixes).
fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut s = prefix.to_vec();
    while let Some(&last) = s.last() {
        if last == 0xff {
            s.pop();
        } else {
            *s.last_mut().expect("non-empty") = last + 1;
            return Some(s);
        }
    }
    None
}

/// Streaming, block-at-a-time record iteration (used by merge and verify).
pub struct GuessCursor<'a> {
    archive: &'a GuessArchive,
    block: usize,
    pos: usize,
    records: Vec<(Vec<u8>, u64)>,
}

impl GuessCursor<'_> {
    /// The next record in ascending byte order, or `None` at the end.
    ///
    /// # Errors
    ///
    /// I/O or block-decoding failures.
    pub fn next_record(&mut self) -> Result<Option<(Vec<u8>, u64)>> {
        loop {
            if self.pos < self.records.len() {
                let record = self.records[self.pos].clone();
                self.pos += 1;
                return Ok(Some(record));
            }
            if self.block >= self.archive.block_count() {
                return Ok(None);
            }
            self.archive
                .decode_block_into(self.block, &mut self.records)?;
            self.block += 1;
            self.pos = 0;
        }
    }
}

impl KeyedSource<Vec<u8>> for GuessCursor<'_> {
    fn next_record(&mut self) -> Result<Option<(Vec<u8>, u64)>> {
        GuessCursor::next_record(self)
    }
}

// ---------------------------------------------------------------------------
// Builder (external merge sort, shared skeleton with DigestStoreBuilder)
// ---------------------------------------------------------------------------

/// Bounded-memory streaming construction of `PFGUESS v1` archives: the
/// [`crate::DigestStoreBuilder`] external-merge-sort skeleton over
/// variable-length guess keys. Spill runs are [`GuessStreamWriter`] streams
/// behind `ScratchFile` drop-guards, so scratch state never outlives the
/// builder — even when a spill or the final k-way merge fails.
pub struct GuessArchiveBuilder {
    config: GuessConfig,
    memory_records: usize,
    scratch_dir: PathBuf,
    buffer: Vec<(Vec<u8>, u64)>,
    runs: Vec<ScratchFile>,
    ingested: u64,
    /// Chaos seam: `(nth_spill, byte_budget)`, as
    /// [`crate::DigestStoreBuilder::with_injected_spill_fault`].
    spill_fault: Option<(u64, u64)>,
    spills: u64,
}

impl GuessArchiveBuilder {
    /// Creates a builder; scratch runs default to [`std::env::temp_dir`].
    pub fn new(config: GuessConfig) -> GuessArchiveBuilder {
        GuessArchiveBuilder {
            config,
            memory_records: DEFAULT_MEMORY_RECORDS,
            scratch_dir: std::env::temp_dir(),
            buffer: Vec::new(),
            runs: Vec::new(),
            ingested: 0,
            spill_fault: None,
            spills: 0,
        }
    }

    /// Caps in-memory buffered records before a sorted run is spilled.
    #[must_use]
    pub fn with_memory_records(mut self, n: usize) -> GuessArchiveBuilder {
        self.memory_records = n.max(1);
        self
    }

    /// Directory for spilled sorted runs (must exist and be writable).
    #[must_use]
    pub fn with_scratch_dir(mut self, dir: impl Into<PathBuf>) -> GuessArchiveBuilder {
        self.scratch_dir = dir.into();
        self
    }

    /// Chaos seam: make the `nth` spill (0-based) fail after `byte_budget`
    /// bytes.
    #[must_use]
    pub fn with_injected_spill_fault(mut self, nth: u64, byte_budget: u64) -> GuessArchiveBuilder {
        self.spill_fault = Some((nth, byte_budget));
        self
    }

    /// Records ingested so far (pre-dedup).
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Ingests one guess with an emission count; duplicates accumulate.
    ///
    /// # Errors
    ///
    /// Spill I/O failures, or an over-long guess.
    pub fn add_guess(&mut self, guess: &str, count: u64) -> Result<()> {
        if guess.len() > MAX_GUESS_LEN {
            return format_err(format!(
                "guess is {} bytes, limit is {MAX_GUESS_LEN}",
                guess.len()
            ));
        }
        self.buffer.push((guess.as_bytes().to_vec(), count.max(1)));
        self.ingested += 1;
        if self.buffer.len() >= self.memory_records {
            self.spill()?;
        }
        Ok(())
    }

    /// Ingests every non-empty line of a wordlist reader (count 1 each).
    ///
    /// # Errors
    ///
    /// Read or spill failures.
    pub fn add_wordlist(&mut self, reader: impl BufRead) -> Result<u64> {
        let mut added = 0u64;
        for line in reader.lines() {
            let line = line?;
            if !line.is_empty() {
                self.add_guess(&line, 1)?;
                added += 1;
            }
        }
        Ok(added)
    }

    /// Sorts and dedups `buffer` in place (counts summed, saturating).
    fn compact(buffer: &mut Vec<(Vec<u8>, u64)>) {
        buffer.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        buffer.dedup_by(|next, kept| {
            if next.0 == kept.0 {
                kept.1 = kept.1.saturating_add(next.1);
                true
            } else {
                false
            }
        });
    }

    /// Spills the compacted buffer as one sorted run file (a counted
    /// [`GuessStreamWriter`] stream, regardless of the archive's counts
    /// flag — the final writer decides what is served).
    fn spill(&mut self) -> Result<()> {
        Self::compact(&mut self.buffer);
        if self.buffer.is_empty() {
            return Ok(());
        }
        let seq = crate::builder::next_run_seq();
        let path = self
            .scratch_dir
            .join(format!("pfguess-run-{}-{seq}.tmp", std::process::id()));
        // Guard before create: a write failure below unlinks the partial run.
        let guard = ScratchFile::new(path);
        let file = File::create(guard.path())?;
        let fault = self.spill_fault.filter(|&(nth, _)| nth == self.spills);
        self.spills += 1;
        let buffer = &self.buffer;
        let write_records = |out: &mut dyn Write| -> Result<()> {
            let mut stream = GuessStreamWriter::new(out, true);
            for (guess, count) in buffer {
                stream.push(guess, *count)?;
            }
            stream.flush()
        };
        match fault {
            Some((_, budget)) => {
                write_records(&mut BufWriter::new(FaultyWrite::new(file, budget)))?;
            }
            None => write_records(&mut BufWriter::new(file))?,
        }
        self.buffer.clear();
        self.runs.push(guard);
        Ok(())
    }

    /// Merges all spilled runs plus the live buffer into the archive at
    /// `path`, returning its stats. Consumes the builder; scratch runs are
    /// deleted afterwards (drop-guards).
    ///
    /// # Errors
    ///
    /// I/O failures at any stage; the target path is written atomically.
    pub fn finish(mut self, path: impl AsRef<Path>) -> Result<GuessStats> {
        Self::compact(&mut self.buffer);
        let buffer = std::mem::take(&mut self.buffer);

        let mut sources: Vec<Box<dyn KeyedSource<Vec<u8>>>> =
            Vec::with_capacity(self.runs.len() + 1);
        for run in &self.runs {
            sources.push(Box::new(RunGuessReader {
                stream: GuessStreamReader::new(BufReader::new(File::open(run.path())?), true),
            }));
        }
        sources.push(Box::new(VecGuessSource {
            iter: buffer.into_iter(),
        }));

        let mut writer = GuessArchiveWriter::create(path, self.config)?;
        merge_keyed(sources, |guess, count| writer.push_bytes(&guess, count))?;
        writer.finish()
        // `self` drops here; the ScratchFile guards remove the run files.
    }
}

/// A spilled sorted run: a counted guess stream, EOF-terminated.
struct RunGuessReader {
    stream: GuessStreamReader<BufReader<File>>,
}

impl KeyedSource<Vec<u8>> for RunGuessReader {
    fn next_record(&mut self) -> Result<Option<(Vec<u8>, u64)>> {
        self.stream.next_guess()
    }
}

/// The final in-memory buffer as a merge source.
struct VecGuessSource {
    iter: std::vec::IntoIter<(Vec<u8>, u64)>,
}

impl KeyedSource<Vec<u8>> for VecGuessSource {
    fn next_record(&mut self) -> Result<Option<(Vec<u8>, u64)>> {
        Ok(self.iter.next())
    }
}

// ---------------------------------------------------------------------------
// N-way archive merge
// ---------------------------------------------------------------------------

/// Unions N shard archives into one at `out`: guesses deduplicated, counts
/// summed (saturating). All inputs must share the same [`GuessConfig`] —
/// that is what guarantees the merged archive is byte-identical to a
/// one-pass build over the union, for **any** merge tree or input order.
///
/// # Errors
///
/// No inputs, mismatched configs, unreadable inputs, or write failures.
pub fn merge_archives<P: AsRef<Path>>(inputs: &[P], out: impl AsRef<Path>) -> Result<GuessStats> {
    if inputs.is_empty() {
        return format_err("merge needs at least one input archive");
    }
    let archives: Vec<GuessArchive> = inputs
        .iter()
        .map(GuessArchive::open)
        .collect::<Result<_>>()?;
    let config = archives[0].config();
    for archive in &archives[1..] {
        if archive.config() != config {
            return format_err(format!(
                "mismatched shard configs: {:?} vs {:?} ({})",
                config,
                archive.config(),
                archive.path().display()
            ));
        }
    }
    let sources: Vec<Box<dyn KeyedSource<Vec<u8>> + '_>> = archives
        .iter()
        .map(|a| Box::new(a.records()) as Box<dyn KeyedSource<Vec<u8>> + '_>)
        .collect();
    let mut writer = GuessArchiveWriter::create(out, config)?;
    merge_keyed(sources, |guess, count| writer.push_bytes(&guess, count))?;
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pfguess-unit-{}-{tag}.pfg", std::process::id()))
    }

    #[test]
    fn stream_round_trips_with_checksum() {
        let mut encoded = Vec::new();
        let records: Vec<(&str, u64)> = vec![
            ("alpha", 3),
            ("alphabet", 1),
            ("beta", 7),
            ("betamax", 2),
            ("gamma", 1),
        ];
        let mut writer = GuessStreamWriter::new(&mut encoded, true);
        for (guess, count) in &records {
            writer.push(guess.as_bytes(), *count).unwrap();
        }
        let (written, checksum) = (writer.records(), writer.checksum());
        assert_eq!(written, 5);

        let mut reader = GuessStreamReader::new(encoded.as_slice(), true);
        for (guess, count) in &records {
            let (g, c) = reader.next_guess().unwrap().unwrap();
            assert_eq!((g.as_slice(), c), (guess.as_bytes(), *count));
        }
        assert!(reader.next_guess().unwrap().is_none(), "clean EOF");
        assert_eq!(reader.checksum(), checksum, "reader recomputes the sum");
    }

    #[test]
    fn stream_rejects_unsorted_and_truncated_input() {
        let mut encoded = Vec::new();
        let mut writer = GuessStreamWriter::new(&mut encoded, true);
        writer.push(b"mango", 1).unwrap();
        assert!(writer.push(b"mango", 1).is_err(), "duplicates rejected");
        assert!(writer.push(b"apple", 1).is_err(), "descending rejected");
        drop(writer);

        encoded.truncate(encoded.len() - 1);
        let mut reader = GuessStreamReader::new(encoded.as_slice(), true);
        assert!(reader.next_guess().is_err(), "truncated record is an error");
    }

    #[test]
    fn archive_round_trips_and_serves_lookups() {
        let path = temp_path("roundtrip");
        let config = GuessConfig {
            counts: true,
            records_per_block: 3,
        };
        let mut writer = GuessArchiveWriter::create(&path, config).unwrap();
        let guesses: Vec<String> = (0..25).map(|i| format!("pw{i:03}")).collect();
        for (i, guess) in guesses.iter().enumerate() {
            writer.push(guess, i as u64 + 1).unwrap();
        }
        let stats = writer.finish().unwrap();
        assert_eq!(stats.record_count, 25);
        assert_eq!(stats.block_count, 9, "25 records over 3-record blocks");

        let archive = GuessArchive::open(&path).unwrap();
        assert_eq!(archive.record_count(), 25);
        assert_eq!(archive.contains("pw007").unwrap(), Some(8));
        assert_eq!(archive.contains("pw777").unwrap(), None);
        let range = archive.extract_prefix("pw01").unwrap();
        assert_eq!(range.len(), 10, "pw010..=pw019");
        assert_eq!(range[0], ("pw010".to_string(), 11));
        assert_eq!(archive.extract_prefix("zz").unwrap(), Vec::new());
        let all = archive.extract_prefix("").unwrap();
        assert_eq!(all.len(), 25, "empty prefix extracts everything");
        archive.verify().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_archives_are_valid() {
        let path = temp_path("empty");
        let writer = GuessArchiveWriter::create(&path, GuessConfig::default()).unwrap();
        let stats = writer.finish().unwrap();
        assert_eq!(stats.record_count, 0);
        let archive = GuessArchive::open(&path).unwrap();
        assert_eq!(archive.record_count(), 0);
        assert_eq!(archive.contains("anything").unwrap(), None);
        archive.verify().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prefix_successor_handles_ff_tails() {
        assert_eq!(prefix_successor(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_successor(b"ab\xff"), Some(b"ac".to_vec()));
        assert_eq!(prefix_successor(b"\xff\xff"), None);
        assert_eq!(prefix_successor(b""), None);
    }

    #[test]
    fn corrupted_archives_fail_verify() {
        let path = temp_path("corrupt");
        let mut writer = GuessArchiveWriter::create(&path, GuessConfig::default()).unwrap();
        for i in 0..100 {
            writer.push(&format!("guess{i:04}"), 1).unwrap();
        }
        writer.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN as usize + 10] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let archive = GuessArchive::open(&path).unwrap();
        assert!(archive.verify().is_err(), "bit flip must fail verify");
        std::fs::remove_file(&path).unwrap();
    }
}
