/root/repo/target/debug/deps/table3-7b389ca210cf4b9b.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-7b389ca210cf4b9b.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
