//! A small persistent worker pool for data-parallel kernels, plus the
//! repo-wide thread-count discipline.
//!
//! The pool exists for exactly one job shape: "run `blocks` independent
//! pieces of work, each writing a disjoint output region, and do not return
//! until every piece is done". That is what the threaded GEMM needs — output
//! row blocks are fully independent, so any assignment of blocks to threads
//! produces bit-identical results — and it keeps the pool std-only: a bounded
//! channel per worker for job hand-off, an atomic block counter for dynamic
//! load balancing, and a mutex/condvar latch for completion.
//!
//! Workers are **persistent**: spawning a thread costs tens of microseconds,
//! which would dwarf a mid-sized GEMM, so a [`ThreadPool`] spawns its workers
//! once and parks them on a channel between jobs. `ThreadPool::new(1)` spawns
//! no workers at all and [`ThreadPool::run`] degenerates to an inline loop —
//! the single-threaded code path is exactly the code that ran before the pool
//! existed.
//!
//! ## Thread-count discipline
//!
//! Every binary and subsystem that takes a thread-count knob resolves it
//! through the same two helpers so behaviour is uniform across the repo:
//!
//! * [`resolve_threads`] — precedence: explicit value (a `--threads` flag) >
//!   the `PASSFLOW_THREADS` environment variable > 1; the result is clamped
//!   by [`clamp_threads`].
//! * [`clamp_threads`] — clamps a requested count to
//!   `[1, available_parallelism]`: thread counts are pure throughput knobs
//!   everywhere in this repo (results are invariant), so oversubscribing the
//!   host is pure scheduling overhead.
//!
//! Benchmarks that sweep thread counts construct [`ThreadPool`]s directly
//! (the constructor never clamps) so the scaling curve can be recorded even
//! where it degenerates to a tie.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

// ---------------------------------------------------------------------------
// Thread-count helpers
// ---------------------------------------------------------------------------

/// The host's available parallelism (at least 1).
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Clamps a requested thread count to `[1, available_parallelism]`.
///
/// Thread counts in this repo are throughput knobs with result invariance,
/// so running more threads than the host has cores is never useful.
pub fn clamp_threads(requested: usize) -> usize {
    requested.clamp(1, host_threads())
}

/// Per-lane GEMM thread count under the `lanes × threads ≤ host` clamp.
///
/// A sharded consumer (the serve batcher's `--lanes`) has up to `lanes`
/// threads submitting GEMMs concurrently. Each submission burns the
/// submitting lane thread *plus* the shared pool's workers, so letting every
/// lane ask for a full [`resolve_threads`] count would oversubscribe the
/// host by a factor of `lanes`. This helper clamps the requested per-lane
/// count so that `lanes × threads` never exceeds [`host_threads`] (and never
/// drops below 1): `lanes` sharded submitters over a pool sized this way is
/// at worst a full host, not `lanes` full hosts. Lane counts and thread
/// counts stay pure throughput knobs — results are bit-identical regardless.
pub fn clamp_lane_threads(lanes: usize, requested: usize) -> usize {
    let lanes = lanes.max(1);
    let per_lane_cap = (host_threads() / lanes).max(1);
    clamp_threads(requested).min(per_lane_cap)
}

/// Resolves a thread-count knob the way every passflow binary does:
/// an explicit value (e.g. a `--threads` flag) wins, otherwise the
/// `PASSFLOW_THREADS` environment variable, otherwise 1; the result is
/// clamped by [`clamp_threads`]. Unparsable environment values are ignored.
/// Sharded callers that multiply the knob across lanes (the serve batcher)
/// compose this with [`clamp_lane_threads`] so `lanes × threads ≤ host`.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    let requested = explicit
        .or_else(|| {
            std::env::var("PASSFLOW_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        })
        .unwrap_or(1);
    clamp_threads(requested)
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// One broadcast job: a type-erased `Fn(block_index)` plus the bookkeeping
/// that lets any number of threads drain the block counter and lets the
/// submitting thread block until the last block completes.
struct Job {
    /// The work closure. The `'static` here is a lie told to the type
    /// system: the pointer borrows from [`ThreadPool::run`]'s caller, and
    /// soundness rests on `run` not returning until [`Job::is_done`] — after
    /// which no worker can observe a block index below `blocks` and
    /// therefore never dereferences `task` again.
    task: *const (dyn Fn(usize) + Sync + 'static),
    /// Next block index to claim (dynamic load balancing).
    next: AtomicUsize,
    /// Total number of blocks in this job.
    blocks: usize,
    /// Completed blocks; the job is done when this reaches `blocks`.
    done: AtomicUsize,
    /// Set when any block panicked (the panic itself is swallowed in the
    /// worker and re-raised on the submitting thread).
    panicked: AtomicBool,
    /// Latch for the submitting thread to sleep on.
    latch: Mutex<()>,
    complete: Condvar,
}

// SAFETY: `task` points at a `Sync` closure, so sharing the pointer across
// threads is sound for the duration of the job; lifetime soundness is argued
// at the field and in `ThreadPool::run`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire) >= self.blocks
    }

    /// Drains the block counter, running claimed blocks until none remain.
    fn work(&self) {
        loop {
            let block = self.next.fetch_add(1, Ordering::Relaxed);
            if block >= self.blocks {
                return;
            }
            // SAFETY: `block < blocks`, so the job is not yet done and the
            // submitting thread is still inside `run`, keeping the borrow
            // behind `task` alive.
            let task = unsafe { &*self.task };
            if catch_unwind(AssertUnwindSafe(|| task(block))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 >= self.blocks {
                // Last block: wake the submitting thread. Taking the lock
                // before notifying orders the wake after the waiter's
                // condition check.
                let _guard = self.latch.lock().expect("pool latch poisoned");
                self.complete.notify_all();
            }
        }
    }

    /// Blocks until every block of the job has completed.
    fn wait(&self) {
        let mut guard = self.latch.lock().expect("pool latch poisoned");
        while !self.is_done() {
            guard = self
                .complete
                .wait(guard)
                .expect("pool latch poisoned while waiting");
        }
    }
}

/// A persistent pool of `threads - 1` parked workers (the submitting thread
/// is the remaining participant).
///
/// Dropping the pool shuts the workers down and joins them. The constructor
/// never clamps: benchmarks deliberately oversubscribe to record scaling
/// curves, and callers with a host-derived knob go through
/// [`resolve_threads`] / [`clamp_threads`] first.
pub struct ThreadPool {
    threads: usize,
    senders: Vec<mpsc::Sender<Arc<Job>>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool that runs jobs on `threads` threads total (the
    /// submitting thread plus `threads - 1` spawned workers; `threads` is
    /// raised to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads - 1);
        let mut workers = Vec::with_capacity(threads - 1);
        for worker in 1..threads {
            let (sender, receiver) = mpsc::channel::<Arc<Job>>();
            senders.push(sender);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("passflow-gemm-{worker}"))
                    .spawn(move || {
                        while let Ok(job) = receiver.recv() {
                            job.work();
                        }
                    })
                    .expect("spawning a pool worker"),
            );
        }
        ThreadPool {
            threads,
            senders,
            workers,
        }
    }

    /// Total number of threads that participate in a job (including the
    /// submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `blocks` independent work items, calling `task(block_index)`
    /// exactly once for each `block_index in 0..blocks`, and returns only
    /// after every item has completed.
    ///
    /// Blocks are claimed dynamically, so the assignment of blocks to
    /// threads is nondeterministic — callers must ensure items are
    /// independent (in this crate: each GEMM block writes a disjoint output
    /// row range, so any assignment computes identical bytes).
    ///
    /// # Panics
    ///
    /// Re-raises (as a new panic) if any work item panicked.
    pub fn run(&self, blocks: usize, task: &(dyn Fn(usize) + Sync)) {
        if blocks == 0 {
            return;
        }
        if self.senders.is_empty() || blocks == 1 {
            for block in 0..blocks {
                task(block);
            }
            return;
        }
        // SAFETY: erase the caller's lifetime; `run` does not return until
        // `job.wait()` observes all blocks complete, after which no thread
        // dereferences the pointer again (see `Job::work`).
        let task: &(dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(task) };
        let job = Arc::new(Job {
            task: task as *const _,
            next: AtomicUsize::new(0),
            blocks,
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            latch: Mutex::new(()),
            complete: Condvar::new(),
        });
        for sender in &self.senders {
            // A worker that died (its receiver dropped) just means fewer
            // participants; the job still completes via the other threads.
            let _ = sender.send(Arc::clone(&job));
        }
        job.work();
        job.wait();
        if job.panicked.load(Ordering::Acquire) {
            panic!("a pool worker panicked while running a parallel job");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channels wakes the workers out of `recv`.
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(5, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn every_block_runs_exactly_once() {
        let pool = ThreadPool::new(4);
        for blocks in [1usize, 2, 3, 7, 64, 257] {
            let counts: Vec<AtomicUsize> = (0..blocks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(blocks, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "{blocks} blocks"
            );
        }
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(16, &|i| {
                total.fetch_add(i, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * (0..16).sum::<usize>());
    }

    #[test]
    fn disjoint_writes_land_in_the_right_slots() {
        let pool = ThreadPool::new(4);
        let mut out = vec![0usize; 1024];
        {
            let chunks = 32;
            let chunk_len = out.len() / chunks;
            let base = out.as_mut_ptr() as usize;
            pool.run(chunks, &|b| {
                // Reconstruct a disjoint &mut chunk — the GEMM's idiom.
                let ptr = (base + b * chunk_len * std::mem::size_of::<usize>()) as *mut usize;
                let chunk = unsafe { std::slice::from_raw_parts_mut(ptr, chunk_len) };
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = b * chunk_len + i;
                }
            });
        }
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn worker_panic_is_reraised_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                assert_ne!(i, 3, "induced failure");
            });
        }));
        assert!(result.is_err(), "the panic must propagate to the caller");
        // The pool is still usable after a panicked job.
        let hits = AtomicUsize::new(0);
        pool.run(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn clamp_is_bounded_by_the_host() {
        assert_eq!(clamp_threads(0), 1);
        assert!(clamp_threads(1_000_000) <= host_threads());
        assert_eq!(clamp_threads(1), 1);
    }

    #[test]
    fn resolve_prefers_explicit_and_stays_clamped() {
        assert_eq!(resolve_threads(Some(1)), 1);
        assert!(resolve_threads(None) >= 1);
        assert!(resolve_threads(Some(usize::MAX)) <= host_threads());
    }

    #[test]
    fn lane_clamp_keeps_lanes_times_threads_within_the_host() {
        // One lane degenerates to the plain clamp.
        assert_eq!(clamp_lane_threads(1, 3), clamp_threads(3));
        assert_eq!(clamp_lane_threads(0, 3), clamp_threads(3), "0 lanes ≡ 1");
        // The product never exceeds the host, and never hits zero.
        for lanes in [1usize, 2, 3, 4, 7, 64, 1_000] {
            for requested in [0usize, 1, 2, 8, usize::MAX] {
                let per_lane = clamp_lane_threads(lanes, requested);
                assert!(per_lane >= 1, "lanes={lanes} requested={requested}");
                assert!(
                    per_lane == 1 || lanes * per_lane <= host_threads(),
                    "lanes={lanes} requested={requested} per_lane={per_lane}"
                );
                assert!(per_lane <= clamp_threads(requested));
            }
        }
        // More lanes than cores: each lane falls back to serial kernels.
        assert_eq!(clamp_lane_threads(host_threads() + 1, usize::MAX), 1);
    }
}
