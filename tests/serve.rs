//! Serving conformance suite: HTTP protocol behavior under adversarial
//! input, and bit-exactness of batched scoring under concurrency and
//! hot-swaps.
//!
//! The protocol half drives the server with malformed request lines,
//! oversized headers, split writes, pipelined bursts and invalid bodies,
//! asserting every one gets a clean 4xx — never a panic, never a hang.
//! The concurrency half holds the same bar as `tests/fastpath.rs`: scores
//! produced through the adaptive micro-batcher under N-thread load must be
//! **bit-identical** (0 ULP) to serial single-request scoring, and a model
//! hot-swap mid-load must never produce a torn or mixed-model response.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

use passflow::serve::client::{self, Connection};
use passflow::serve::{serve, BatcherConfig, ModelRegistry, ServedModel, ServerConfig};
use passflow::{FlowConfig, PassFlow, ProbabilityModel, SampleTable};

fn tiny_flow(seed: u64) -> PassFlow {
    let mut rng = passflow::nn::rng::seeded(seed);
    PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
}

/// Starts a server with one registered flow; the caller keeps the registry
/// handle (that is the hot-swap interface) and the flow (the serial oracle).
fn start_server(
    config: ServerConfig,
    seed: u64,
) -> (passflow::serve::ServerHandle, PassFlow, Arc<ModelRegistry>) {
    let flow = tiny_flow(seed);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(ServedModel::from_flow("default", &flow, 1, None));
    let server = serve(config, Arc::clone(&registry)).expect("bind on loopback");
    (server, flow, registry)
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

/// Extracts `"log_prob_bits"` hex fields from a score response, in order.
fn response_bits(body: &str) -> Vec<u64> {
    body.split("\"log_prob_bits\":\"")
        .skip(1)
        .map(|rest| u64::from_str_radix(&rest[..16], 16).expect("16 hex digits"))
        .collect()
}

/// Extracts the `"version"` field from a score response.
fn response_version(body: &str) -> u64 {
    let rest = body.split("\"version\":").nth(1).expect("version field");
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("integer version")
}

// ---------------------------------------------------------------------------
// Protocol conformance
// ---------------------------------------------------------------------------

#[test]
fn malformed_requests_get_clean_4xx() {
    let (server, _flow, _registry) = start_server(quick_config(), 1);
    let addr = server.addr();

    // (raw bytes, expected status) — each on a fresh connection.
    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"GARBAGE\r\n\r\n".to_vec(), 400),
        (b"GET /healthz\r\n\r\n".to_vec(), 400),
        (b"get /healthz HTTP/1.1\r\n\r\n".to_vec(), 400),
        (b"GET /healthz HTTP/9.9\r\n\r\n".to_vec(), 505),
        (
            format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(8192)).into_bytes(),
            414,
        ),
        (
            format!("GET /healthz HTTP/1.1\r\nx: {}\r\n\r\n", "v".repeat(8192)).into_bytes(),
            431,
        ),
        (
            format!(
                "GET /healthz HTTP/1.1\r\n{}\r\n",
                (0..100).map(|i| format!("h{i}: v\r\n")).collect::<String>()
            )
            .into_bytes(),
            431,
        ),
        (
            b"POST /v1/score HTTP/1.1\r\ncontent-length: 9999999\r\n\r\n".to_vec(),
            413,
        ),
        (
            b"POST /v1/score HTTP/1.1\r\ncontent-length: nope\r\n\r\n".to_vec(),
            400,
        ),
        (
            b"POST /v1/score HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".to_vec(),
            501,
        ),
        (
            b"GET /healthz HTTP/1.1\r\nbroken header\r\n\r\n".to_vec(),
            400,
        ),
    ];
    for (raw, expected) in cases {
        let mut conn = Connection::open(addr, Duration::from_secs(5)).unwrap();
        conn.stream().write_all(&raw).unwrap();
        conn.stream().flush().unwrap();
        let response = conn.read_response().unwrap();
        assert_eq!(
            response.status,
            expected,
            "{:?} → {}",
            String::from_utf8_lossy(&raw[..raw.len().min(40)]),
            response.text()
        );
    }

    // The server is still healthy after all of that.
    let health = client::request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\":\"ok\""));

    server.shutdown();
    server.join();
}

#[test]
fn bad_bodies_and_routes_get_clean_4xx() {
    let (server, _flow, _registry) = start_server(quick_config(), 2);
    let addr = server.addr();

    let cases: Vec<(&str, &str, Option<&str>, u16)> = vec![
        // Unknown endpoint and wrong methods.
        ("GET", "/nope", None, 404),
        ("DELETE", "/v1/score", None, 405),
        ("POST", "/healthz", None, 405),
        // Admin shutdown is disabled unless opted in.
        ("POST", "/admin/shutdown", None, 404),
        // Zero-length and malformed bodies.
        ("POST", "/v1/score", None, 400),
        ("POST", "/v1/score", Some("not json"), 400),
        ("POST", "/v1/score", Some("{\"passwords\":[]}"), 422),
        ("POST", "/v1/score", Some("{\"passwords\":\"abc\"}"), 422),
        ("POST", "/v1/score", Some("{\"passwords\":[1,2]}"), 422),
        ("POST", "/v1/score", Some("{}"), 422),
        (
            "POST",
            "/v1/score",
            Some("{\"model\":\"ghost\",\"passwords\":[\"a\"]}"),
            404,
        ),
        ("POST", "/v1/logprob", Some("not json"), 400),
    ];
    for (method, path, body, expected) in cases {
        let response = client::request(addr, method, path, body).unwrap();
        assert_eq!(
            response.status,
            expected,
            "{method} {path} {body:?} → {}",
            response.text()
        );
    }

    // A >max-batch body sheds with 413.
    let too_many: Vec<String> = (0..passflow::serve::MAX_REQUEST_PASSWORDS + 1)
        .map(|i| format!("\"p{i}\""))
        .collect();
    let body = format!("{{\"passwords\":[{}]}}", too_many.join(","));
    let response = client::request(addr, "POST", "/v1/score", Some(&body)).unwrap();
    assert_eq!(response.status, 413, "{}", response.text());

    server.shutdown();
    server.join();
}

#[test]
fn split_writes_and_pipelining_are_handled() {
    let (server, flow, _registry) = start_server(quick_config(), 3);
    let addr = server.addr();

    // Partial/split reads: dribble a valid request a few bytes at a time.
    let mut conn = Connection::open(addr, Duration::from_secs(10)).unwrap();
    let body = r#"{"passwords":["jimmy91"]}"#;
    let raw = format!(
        "POST /v1/score HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    for chunk in raw.as_bytes().chunks(7) {
        conn.stream().write_all(chunk).unwrap();
        conn.stream().flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let response = conn.read_response().unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let expected = flow.password_log_prob("jimmy91").unwrap();
    assert_eq!(response_bits(&response.text()), vec![expected.to_bits()]);

    // Pipelining: three requests written back-to-back, three responses in
    // order on the same connection.
    let mut conn = Connection::open(addr, Duration::from_secs(10)).unwrap();
    conn.send("GET", "/healthz", None).unwrap();
    conn.send("POST", "/v1/score", Some(r#"{"passwords":["dragon"]}"#))
        .unwrap();
    conn.send("GET", "/metrics", None).unwrap();
    let first = conn.read_response().unwrap();
    assert_eq!(first.status, 200);
    assert!(first.text().contains("\"status\":\"ok\""));
    let second = conn.read_response().unwrap();
    let expected = flow.password_log_prob("dragon").unwrap();
    assert_eq!(response_bits(&second.text()), vec![expected.to_bits()]);
    let third = conn.read_response().unwrap();
    assert!(third.text().contains("passflow_requests_total"));

    server.shutdown();
    server.join();
}

#[test]
fn metrics_and_healthz_expose_serving_state() {
    let (server, _flow, _registry) = start_server(quick_config(), 4);
    let addr = server.addr();

    for pw in ["aaa", "bbb", "ccc"] {
        let body = format!("{{\"passwords\":[\"{pw}\"]}}");
        let response = client::request(addr, "POST", "/v1/score", Some(&body)).unwrap();
        assert_eq!(response.status, 200);
    }
    let _ = client::request(addr, "GET", "/nope", None).unwrap();

    let metrics = client::request(addr, "GET", "/metrics", None)
        .unwrap()
        .text();
    assert!(metrics.contains("passflow_requests_total{endpoint=\"score\",status=\"2xx\"} 3"));
    assert!(metrics.contains("passflow_requests_total{endpoint=\"other\",status=\"4xx\"} 1"));
    assert!(metrics.contains("passflow_batch_size_bucket"));
    assert!(metrics.contains("passflow_request_latency_seconds{quantile=\"0.99\"}"));

    let health = client::request(addr, "GET", "/healthz", None)
        .unwrap()
        .text();
    assert!(health.contains("\"models\":[\"default\"]"));

    server.shutdown();
    server.join();
}

// ---------------------------------------------------------------------------
// Concurrency correctness
// ---------------------------------------------------------------------------

#[test]
fn concurrent_batched_scores_are_bit_identical_to_serial() {
    // Force real coalescing: a generous straggler window and batch size.
    let config = ServerConfig {
        batcher: BatcherConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(5),
            ..BatcherConfig::default()
        },
        ..quick_config()
    };
    let (server, flow, _registry) = start_server(config, 5);
    let addr = server.addr();

    const THREADS: usize = 8;
    const REQUESTS: usize = 24;
    let clients: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut conn = Connection::open(addr, Duration::from_secs(30)).unwrap();
                (0..REQUESTS)
                    .map(|i| {
                        // Overlapping password sets across threads, plus an
                        // unencodable one to keep the None path honest.
                        let pw = if i % 7 == 6 {
                            "waytoolongtoencode".to_string()
                        } else {
                            format!("pw{}x{}", t % 3, i)
                        };
                        let body = format!("{{\"passwords\":[{}]}}", serve_quote(&pw));
                        let response = conn.request("POST", "/v1/score", Some(&body)).unwrap();
                        assert_eq!(response.status, 200);
                        (pw, response.text())
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    for client in clients {
        for (pw, body) in client.join().unwrap() {
            let bits = response_bits(&body);
            match flow.password_log_prob(&pw) {
                Some(expected) => {
                    assert_eq!(bits, vec![expected.to_bits()], "{pw}: batched ≠ serial")
                }
                None => assert!(bits.is_empty(), "{pw} must score null"),
            }
        }
    }

    // The batcher actually coalesced: at least one multi-request tick.
    let metrics = server.metrics();
    assert!(
        metrics.total_requests() >= (THREADS * REQUESTS) as u64,
        "all requests recorded"
    );

    server.shutdown();
    server.join();
}

/// Minimal JSON string quoting for test bodies.
fn serve_quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

#[test]
fn hot_swap_mid_load_never_tears_a_response() {
    let (server, flow_v1, registry) = start_server(quick_config(), 6);
    let addr = server.addr();
    let flow_v2 = tiny_flow(7);

    // Expected scores per version for the probe password.
    let probe = "jimmy91";
    let v1_bits = flow_v1.password_log_prob(probe).unwrap().to_bits();
    let v2_bits = flow_v2.password_log_prob(probe).unwrap().to_bits();
    assert_ne!(v1_bits, v2_bits, "the two versions must disagree");

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut conn = Connection::open(addr, Duration::from_secs(30)).unwrap();
                let mut observed: Vec<(u64, u64)> = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let response = conn
                        .request("POST", "/v1/score", Some(r#"{"passwords":["jimmy91"]}"#))
                        .unwrap();
                    assert_eq!(response.status, 200);
                    let text = response.text();
                    observed.push((response_version(&text), response_bits(&text)[0]));
                }
                observed
            })
        })
        .collect();

    // Let load build up, then swap under it.
    std::thread::sleep(Duration::from_millis(100));
    let displaced = registry
        .swap(ServedModel::from_flow("default", &flow_v2, 2, None))
        .expect("default is registered");
    assert_eq!(displaced.version(), 1);
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    let mut saw_v1 = false;
    let mut saw_v2 = false;
    for client in clients {
        for (version, bits) in client.join().unwrap() {
            match version {
                1 => {
                    saw_v1 = true;
                    assert_eq!(bits, v1_bits, "version 1 response must carry v1 weights");
                }
                2 => {
                    saw_v2 = true;
                    assert_eq!(bits, v2_bits, "version 2 response must carry v2 weights");
                }
                other => panic!("unexpected version {other}"),
            }
        }
    }
    assert!(saw_v1, "some requests must land before the swap");
    assert!(saw_v2, "some requests must land after the swap");

    server.shutdown();
    server.join();
}

#[test]
fn score_estimates_match_the_sample_table() {
    let flow = tiny_flow(8);
    let table = SampleTable::build(&flow, 500, 3);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(ServedModel::from_flow(
        "default",
        &flow,
        1,
        Some(table.clone()),
    ));
    let server = serve(quick_config(), registry).unwrap();
    let addr = server.addr();

    let response = client::request(
        addr,
        "POST",
        "/v1/score",
        Some(r#"{"passwords":["dragon"]}"#),
    )
    .unwrap();
    assert_eq!(response.status, 200);
    let text = response.text();
    assert!(text.contains("\"log2_guess_number\":"));

    // The served estimate equals the offline estimate for the same score.
    let lp = flow.password_log_prob("dragon").unwrap();
    let expected = table.estimate(lp);
    let served: f64 = text
        .split("\"log2_guess_number\":")
        .nth(1)
        .unwrap()
        .split([',', '}'])
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(served.to_bits(), expected.log2_guess_number.to_bits());

    server.shutdown();
    server.join();
}

// ---------------------------------------------------------------------------
// Breach screening endpoints (digest store)
// ---------------------------------------------------------------------------

/// Builds a digest store from `passwords` in a temp file and opens it.
fn digest_fixture(
    tag: &str,
    passwords: &[&str],
) -> (Arc<passflow::DigestStore>, std::path::PathBuf) {
    let path =
        std::env::temp_dir().join(format!("pfdigest-serve-{tag}-{}.pfd", std::process::id()));
    let mut builder = passflow::DigestStoreBuilder::new(passflow::DigestConfig::default());
    for pw in passwords {
        builder.add_password(pw).unwrap();
    }
    builder.finish(&path).unwrap();
    (Arc::new(passflow::DigestStore::open(&path).unwrap()), path)
}

#[test]
fn models_endpoint_lists_registered_models_with_versions() {
    let (server, flow, registry) = start_server(quick_config(), 40);
    let addr = server.addr();
    registry.insert(ServedModel::from_flow("alt", &flow, 7, None));

    let response = client::request(addr, "GET", "/v1/models", None).unwrap();
    assert_eq!(response.status, 200);
    let text = response.text();
    assert!(text.contains("\"name\":\"alt\""), "{text}");
    assert!(text.contains("\"name\":\"default\""), "{text}");
    assert!(text.contains("\"version\":7"), "{text}");

    // A swap bumps the reported version.
    registry
        .swap(ServedModel::from_flow("alt", &flow, 8, None))
        .unwrap();
    let text = client::request(addr, "GET", "/v1/models", None)
        .unwrap()
        .text();
    assert!(text.contains("\"version\":8"), "{text}");
    assert!(!text.contains("\"version\":7"), "{text}");

    assert_eq!(
        client::request(addr, "POST", "/v1/models", None)
            .unwrap()
            .status,
        405
    );

    server.shutdown();
    server.join();
}

#[test]
fn breach_endpoints_answer_503_without_a_digest_store() {
    let (server, _flow, _registry) = start_server(quick_config(), 41);
    let addr = server.addr();

    let range = client::request(addr, "GET", "/v1/range/CBFDA", None).unwrap();
    assert_eq!(range.status, 503, "{}", range.text());
    let screen = client::request(
        addr,
        "POST",
        "/v1/screen",
        Some(r#"{"passwords":["dragon"]}"#),
    )
    .unwrap();
    assert_eq!(screen.status, 503, "{}", screen.text());

    server.shutdown();
    server.join();
}

#[test]
fn range_endpoint_serves_k_anonymity_suffixes() {
    let breached = ["password123", "dragon", "letmein", "jimmy91"];
    let (digest, path) = digest_fixture("range", &breached);
    let flow = tiny_flow(42);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(ServedModel::from_flow("default", &flow, 1, None));
    let server = serve(
        ServerConfig {
            digest: Some(Arc::clone(&digest)),
            ..quick_config()
        },
        registry,
    )
    .unwrap();
    let addr = server.addr();

    // Every breached password's suffix appears under its own prefix, and
    // the served set matches the offline range query exactly.
    for pw in breached {
        let hex = passflow::store::sha1::to_hex(&passflow::store::sha1::password_digest(pw));
        let (prefix, _) = hex.split_at(5);
        let response = client::request(addr, "GET", &format!("/v1/range/{prefix}"), None).unwrap();
        assert_eq!(response.status, 200);
        let text = response.text();
        for entry in digest.range(prefix).unwrap() {
            assert!(
                text.contains(&format!("\"suffix\":\"{}\"", entry.suffix)),
                "{pw}: missing {} in {text}",
                entry.suffix
            );
        }
        assert!(text.contains(&format!("\"prefix\":\"{prefix}\"")), "{text}");
    }

    // A prefix with no members answers 200 with an empty set (the
    // k-anonymity protocol must not leak membership through the status).
    let response = client::request(addr, "GET", "/v1/range/00000", None).unwrap();
    assert_eq!(response.status, 200);
    assert!(
        response.text().contains("\"suffixes\":[]"),
        "{}",
        response.text()
    );

    // Malformed prefixes: wrong length or non-hex are 422, not 404.
    for bad in ["CBFD", "CBFDAA", "zzzzz", "%20%20"] {
        let response = client::request(addr, "GET", &format!("/v1/range/{bad}"), None).unwrap();
        assert_eq!(response.status, 422, "prefix {bad:?}: {}", response.text());
    }

    server.shutdown();
    server.join();
    let _ = std::fs::remove_file(path);
}

#[test]
fn screen_verdicts_match_offline_contains_exactly() {
    let breached = ["password123", "dragon", "dragon", "abc123"];
    let (digest, path) = digest_fixture("screen", &breached);
    let flow = tiny_flow(43);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(ServedModel::from_flow("default", &flow, 1, None));
    let server = serve(
        ServerConfig {
            digest: Some(Arc::clone(&digest)),
            ..quick_config()
        },
        registry,
    )
    .unwrap();
    let addr = server.addr();

    // A mix of breached, clean, repeated-breach and unencodable passwords.
    let probes = ["password123", "dragon", "NotBreached42", "abc123", "héllo"];
    let body = format!(
        "{{\"passwords\":[{}]}}",
        probes
            .iter()
            .map(|p| format!("{p:?}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    let response = client::request(addr, "POST", "/v1/screen", Some(&body)).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let text = response.text();

    // JSON objects render with sorted keys, so within one result the
    // breach fields precede "password" — parse backwards from the marker.
    for pw in probes {
        let offline = digest.contains_password(pw).unwrap();
        let before = text
            .split(&format!("\"password\":\"{pw}\""))
            .next()
            .unwrap_or_else(|| panic!("{pw} missing from {text}"));
        let served_breached = before
            .rsplit("\"breached\":")
            .next()
            .unwrap()
            .starts_with("true");
        assert_eq!(
            served_breached,
            offline.is_some(),
            "{pw}: served {served_breached}, offline {offline:?}"
        );
        let served_count: u64 = before
            .rsplit("\"breach_count\":")
            .next()
            .unwrap()
            .split([',', '}'])
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(served_count, offline.unwrap_or(0), "{pw} count");
    }
    // The unencodable password still got a verdict with a null score.
    let unencodable = text.split("\"password\":\"héllo\"").next().unwrap();
    assert!(
        unencodable
            .rsplit("\"breach_count\":")
            .next()
            .unwrap()
            .contains("\"log_prob\":null"),
        "{unencodable}"
    );

    // Screening is also visible in the metrics under its own endpoint.
    let metrics = client::request(addr, "GET", "/metrics", None)
        .unwrap()
        .text();
    assert!(
        metrics.contains("passflow_requests_total{endpoint=\"screen\",status=\"2xx\"} 1"),
        "{metrics}"
    );

    server.shutdown();
    server.join();
    let _ = std::fs::remove_file(path);
}

// ---------------------------------------------------------------------------
// Robustness: vanished clients and per-component health
// ---------------------------------------------------------------------------

#[test]
fn clients_that_vanish_mid_request_leak_nothing() {
    let (server, flow, _registry) = start_server(quick_config(), 45);
    let addr = server.addr();

    // Complete requests whose clients vanish before reading the response:
    // the batcher still scores the job, and both the dead reply channel
    // and the failed response write must be absorbed silently.
    for i in 0..10 {
        let mut conn = Connection::open(addr, Duration::from_secs(5)).unwrap();
        conn.send(
            "POST",
            "/v1/score",
            Some(&format!("{{\"passwords\":[\"gone{i}\"]}}")),
        )
        .unwrap();
        drop(conn);
    }
    // Every orphaned request is still read, routed and *counted* — wait
    // for the handlers to get there rather than racing them.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.metrics().total_requests() < 10 {
        assert!(
            std::time::Instant::now() < deadline,
            "orphaned requests must still be processed and recorded \
             (saw {} of 10)",
            server.metrics().total_requests()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // No phantom failure metrics: nothing expired, nothing was shed.
    assert_eq!(server.metrics().deadline_expired_total(), 0);
    assert_eq!(server.metrics().shed_total(), 0);

    // And the server is fully healthy: live batcher, bit-exact scores.
    let health = client::request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert!(
        health.text().contains("\"status\":\"ok\""),
        "{}",
        health.text()
    );
    let response = client::request(
        addr,
        "POST",
        "/v1/score",
        Some(r#"{"passwords":["jimmy91"]}"#),
    )
    .unwrap();
    assert_eq!(response.status, 200);
    let expected = flow.password_log_prob("jimmy91").unwrap();
    assert_eq!(response_bits(&response.text()), vec![expected.to_bits()]);

    server.shutdown();
    server.join();
}

#[test]
fn healthz_reports_per_component_status() {
    // Without a digest store: every component reported, store "absent",
    // and absence does not degrade overall health.
    let (server, _flow, _registry) = start_server(quick_config(), 46);
    let health = client::request(server.addr(), "GET", "/healthz", None)
        .unwrap()
        .text();
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"components\":"), "{health}");
    assert!(
        health.contains("\"registry\":{\"models\":1,\"status\":\"ok\"}"),
        "{health}"
    );
    assert!(
        health
            .contains("\"batcher\":{\"lanes\":[{\"lane\":0,\"status\":\"ok\"}],\"status\":\"ok\"}"),
        "{health}"
    );
    assert!(health.contains("\"connections\":{"), "{health}");
    assert!(
        health.contains("\"digest_store\":{\"status\":\"absent\"}"),
        "{health}"
    );
    server.shutdown();
    server.join();

    // With a digest store: the breaker state is part of the report.
    let (digest, path) = digest_fixture("healthz", &["dragon"]);
    let flow = tiny_flow(47);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(ServedModel::from_flow("default", &flow, 1, None));
    let server = serve(
        ServerConfig {
            digest: Some(digest),
            ..quick_config()
        },
        registry,
    )
    .unwrap();
    let health = client::request(server.addr(), "GET", "/healthz", None)
        .unwrap()
        .text();
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"breaker\":\"closed\""), "{health}");
    server.shutdown();
    server.join();
    let _ = std::fs::remove_file(path);
}

// ---------------------------------------------------------------------------
// JSON hardening regressions (depth limit, lone surrogates)
// ---------------------------------------------------------------------------

#[test]
fn deeply_nested_and_lone_surrogate_bodies_get_400() {
    let (server, _flow, _registry) = start_server(quick_config(), 44);
    let addr = server.addr();

    // 64 nested arrays blows the parser's depth limit → 400, not a stack
    // overflow or a hang.
    let deep = format!("{{\"passwords\":{}{}}}", "[".repeat(64), "]".repeat(64));
    let response = client::request(addr, "POST", "/v1/score", Some(&deep)).unwrap();
    assert_eq!(response.status, 400, "{}", response.text());

    // A lone UTF-16 surrogate escape is invalid JSON text → 400.
    let lone = r#"{"passwords":["\ud800"]}"#;
    let response = client::request(addr, "POST", "/v1/score", Some(lone)).unwrap();
    assert_eq!(response.status, 400, "{}", response.text());

    // A valid surrogate *pair* still parses (the limit is precise).
    let pair = r#"{"passwords":["😀"]}"#;
    let response = client::request(addr, "POST", "/v1/score", Some(pair)).unwrap();
    assert_ne!(response.status, 400, "{}", response.text());

    // The server is still alive and correct after the adversarial bodies.
    let health = client::request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);

    server.shutdown();
    server.join();
}
