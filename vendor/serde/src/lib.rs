//! Offline stand-in for `serde`.
//!
//! The reproduction only uses `#[derive(Serialize, Deserialize)]` as a
//! forward-compatibility marker — model persistence goes through the
//! self-describing `PASSFLOW v1` text format in `passflow-core::persist`,
//! and no code path performs a serde serialization. This shim therefore
//! reduces the traits to blanket-implemented markers and the derives to
//! no-ops, which keeps every annotated type compiling without network access
//! to crates.io. Swapping in the real `serde` is a manifest-only change.

#![warn(rust_2018_idioms)]

/// Marker for types that would be serializable under the real `serde`.
pub trait Serialize {}

/// Marker for types that would be deserializable under the real `serde`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[test]
    fn derives_compile_and_traits_cover_all_types() {
        #[derive(crate::Serialize, crate::Deserialize)]
        struct Annotated {
            _field: u32,
        }

        fn assert_serialize<T: crate::Serialize>() {}
        assert_serialize::<Annotated>();
        assert_serialize::<Vec<String>>();
    }
}
