//! The PassFlow model: a stack of affine coupling layers forming an
//! invertible map between password feature vectors and a Gaussian latent
//! space (Sections II and III of the paper).

use std::sync::Arc;

use parking_lot::RwLock;
use rand::Rng;

use passflow_nn::rng as nnrng;
use passflow_nn::{GradBatch, Parameter, Tape, Tensor, Var};
use passflow_passwords::PasswordEncoder;

use crate::config::FlowConfig;
use crate::coupling::CouplingLayer;
use crate::error::{FlowError, Result};
use crate::fastpath::{FlowSnapshot, FlowWorkspace};
use crate::prior::{Prior, StandardGaussianPrior};

const LN_2PI: f32 = 1.837_877_1;

/// A flow-based generative model over passwords.
///
/// The model is an invertible function `f_θ : X → Z` built from
/// [`CouplingLayer`]s with alternating masks. Training maximizes the exact
/// log-likelihood (Equation 8); sampling draws latent points from a prior
/// and applies the inverse flow.
///
/// # Example
///
/// ```rust
/// use passflow_core::{FlowConfig, PassFlow};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
/// // Untrained models already define an exact density over passwords.
/// let lp = flow.log_prob_password("jimmy91").unwrap();
/// assert!(lp.is_finite());
/// ```
#[derive(Clone, Debug)]
pub struct PassFlow {
    config: FlowConfig,
    encoder: PasswordEncoder,
    couplings: Vec<CouplingLayer>,
    snapshot_cache: SnapshotCache,
}

/// A lazily built, automatically invalidated cache of the flow's inference
/// snapshot. Cloning a `PassFlow` starts the clone with a cold cache (the
/// weights themselves are shared handles, so both caches converge to the
/// same snapshot on demand).
#[derive(Debug, Default)]
struct SnapshotCache(RwLock<Option<Arc<FlowSnapshot>>>);

impl Clone for SnapshotCache {
    fn clone(&self) -> Self {
        SnapshotCache::default()
    }
}

impl PassFlow {
    /// Creates a randomly initialized flow with the default password encoder
    /// (full printable alphabet, maximum length from the configuration).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] if the configuration does not
    /// validate.
    pub fn new<R: Rng + ?Sized>(config: FlowConfig, rng: &mut R) -> Result<Self> {
        let encoder = PasswordEncoder::new(passflow_passwords::Alphabet::default(), config.max_len);
        Self::with_encoder(config, encoder, rng)
    }

    /// Creates a randomly initialized flow with a custom encoder.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] if the configuration does not
    /// validate or if the encoder's length differs from `config.max_len`.
    pub fn with_encoder<R: Rng + ?Sized>(
        config: FlowConfig,
        encoder: PasswordEncoder,
        rng: &mut R,
    ) -> Result<Self> {
        config.validate()?;
        if encoder.max_len() != config.max_len {
            return Err(FlowError::InvalidConfig(format!(
                "encoder max_len {} does not match config max_len {}",
                encoder.max_len(),
                config.max_len
            )));
        }
        let couplings = (0..config.coupling_layers)
            .map(|i| {
                let mask = config.masking.mask_for_layer(i, config.max_len);
                CouplingLayer::new(
                    config.max_len,
                    config.hidden_size,
                    config.residual_blocks,
                    &mask,
                    rng,
                )
            })
            .collect();
        Ok(PassFlow {
            config,
            encoder,
            couplings,
            snapshot_cache: SnapshotCache::default(),
        })
    }

    /// The architecture configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// The password encoder used by this flow.
    pub fn encoder(&self) -> &PasswordEncoder {
        &self.encoder
    }

    /// Dimensionality of the data and latent spaces.
    pub fn dim(&self) -> usize {
        self.config.max_len
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> Vec<Parameter> {
        self.couplings.iter().flat_map(|c| c.parameters()).collect()
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.parameters().iter().map(Parameter::len).sum()
    }

    /// The standard-normal prior this flow is trained against.
    pub fn prior(&self) -> StandardGaussianPrior {
        StandardGaussianPrior::new(self.dim())
    }

    // ------------------------------------------------------------------
    // Encoding helpers
    // ------------------------------------------------------------------

    /// Encodes a batch of passwords into a `n × dim` tensor, skipping any
    /// password the encoder cannot represent.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::EmptyTrainingSet`] if nothing could be encoded.
    pub fn encode_batch(&self, passwords: &[String]) -> Result<Tensor> {
        let (features, _) = self.encoder.encode_batch(passwords);
        if features.is_empty() {
            return Err(FlowError::EmptyTrainingSet);
        }
        let rows: Vec<Vec<f32>> = features;
        Ok(Tensor::from_rows(&rows))
    }

    /// Decodes each row of a data-space tensor back into a password string.
    pub fn decode_batch(&self, x: &Tensor) -> Vec<String> {
        (0..x.rows())
            .map(|i| self.encoder.decode(x.row_slice(i)))
            .collect()
    }

    // ------------------------------------------------------------------
    // Forward / inverse / density
    // ------------------------------------------------------------------

    /// Applies the forward flow `z = f_θ(x)` through the inference fast
    /// path (cached weight snapshot + fused kernels).
    ///
    /// Returns the latent batch and the per-sample log-determinant of the
    /// Jacobian (a `batch × 1` tensor). Bit-exact with
    /// [`forward_reference`](Self::forward_reference).
    pub fn forward(&self, x: &Tensor) -> (Tensor, Tensor) {
        self.snapshot().forward(x)
    }

    /// Applies the inverse flow `x = f_θ⁻¹(z)` through the inference fast
    /// path (cached weight snapshot + fused kernels).
    ///
    /// Bit-exact with [`inverse_reference`](Self::inverse_reference).
    pub fn inverse(&self, z: &Tensor) -> Tensor {
        self.snapshot().inverse(z)
    }

    /// Reference forward implementation: chains
    /// [`CouplingLayer::forward`] with per-layer tensor allocation. Kept as
    /// the oracle the fast path is tested against to 0 ULP.
    pub fn forward_reference(&self, x: &Tensor) -> (Tensor, Tensor) {
        assert_eq!(
            x.cols(),
            self.dim(),
            "input width must equal flow dimension"
        );
        let mut z = x.clone();
        let mut log_det = Tensor::zeros(x.rows(), 1);
        for coupling in &self.couplings {
            let (next, ld) = coupling.forward(&z);
            z = next;
            log_det.add_assign(&ld);
        }
        (z, log_det)
    }

    /// Reference inverse implementation: chains
    /// [`CouplingLayer::inverse`] with per-layer tensor allocation. Kept as
    /// the oracle the fast path is tested against to 0 ULP.
    pub fn inverse_reference(&self, z: &Tensor) -> Tensor {
        assert_eq!(
            z.cols(),
            self.dim(),
            "input width must equal flow dimension"
        );
        let mut x = z.clone();
        for coupling in self.couplings.iter().rev() {
            x = coupling.inverse(&x);
        }
        x
    }

    /// Exact log-density of each row of `x` under the model (Equation 5):
    /// `log p_θ(x) = log p_z(f_θ(x)) + log |det ∂f_θ/∂x|`.
    ///
    /// Routes through the fused fast path
    /// ([`FlowSnapshot::log_prob_into`]); bit-exact with
    /// [`log_prob_reference`](Self::log_prob_reference).
    pub fn log_prob(&self, x: &Tensor) -> Vec<f32> {
        let mut ws = FlowWorkspace::new();
        let mut out = Tensor::default();
        self.snapshot().log_prob_into(x, &mut ws, &mut out);
        out.as_slice().to_vec()
    }

    /// Reference log-density implementation: [`forward_reference`]
    /// (per-layer tensor allocation) plus the prior's per-row scoring. Kept
    /// as the oracle the fused [`log_prob`](Self::log_prob) path is tested
    /// against to 0 ULP.
    ///
    /// [`forward_reference`]: Self::forward_reference
    pub fn log_prob_reference(&self, x: &Tensor) -> Vec<f32> {
        let (z, log_det) = self.forward_reference(x);
        let prior = self.prior();
        prior
            .log_prob(&z)
            .into_iter()
            .enumerate()
            .map(|(i, lp)| lp + log_det.get(i, 0))
            .collect()
    }

    /// Exact log-density of a single password.
    ///
    /// Returns `None` if the password cannot be encoded.
    pub fn log_prob_password(&self, password: &str) -> Option<f32> {
        let features = self.encoder.encode(password)?;
        let x = Tensor::from_rows(&[features]);
        Some(self.log_prob(&x)[0])
    }

    /// Latent representation of a single password (`z = f_θ(x)`).
    ///
    /// Returns `None` if the password cannot be encoded.
    pub fn latent_of(&self, password: &str) -> Option<Vec<f32>> {
        let features = self.encoder.encode(password)?;
        let x = Tensor::from_rows(&[features]);
        let (z, _) = self.forward(&x);
        Some(z.row_slice(0).to_vec())
    }

    // ------------------------------------------------------------------
    // Sampling
    // ------------------------------------------------------------------

    /// Draws `n` latent samples from the standard-normal prior.
    pub fn sample_latent<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Tensor {
        self.prior().sample(n, rng)
    }

    /// Generates `n` password guesses by sampling the prior and inverting
    /// the flow (the paper's *static* sampling).
    pub fn sample_passwords<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<String> {
        let z = self.sample_latent(n, rng);
        let x = self.inverse(&z);
        self.decode_batch(&x)
    }

    /// Samples `n` passwords in the latent neighbourhood of `pivot`
    /// (Table V): latent points are drawn from `N(f_θ(pivot), σ² I)` and
    /// mapped back to the data space.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnencodablePassword`] if the pivot cannot be
    /// encoded.
    pub fn sample_near<R: Rng + ?Sized>(
        &self,
        pivot: &str,
        sigma: f32,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<String>> {
        let center = self
            .latent_of(pivot)
            .ok_or_else(|| FlowError::UnencodablePassword(pivot.to_string()))?;
        let mut z = Tensor::zeros(n, self.dim());
        for i in 0..n {
            for (j, &c) in center.iter().enumerate() {
                z.set(i, j, c + sigma * nnrng::standard_normal(rng));
            }
        }
        let x = self.inverse(&z);
        Ok(self.decode_batch(&x))
    }

    // ------------------------------------------------------------------
    // Training loss
    // ------------------------------------------------------------------

    /// Builds the negative log-likelihood loss (Equation 8) for a batch of
    /// encoded passwords on the given tape. The returned scalar [`Var`] can
    /// be backpropagated directly.
    pub fn nll_loss(&self, tape: &Tape, batch: &Tensor) -> Var {
        let n = batch.rows() as f32;
        self.nll_loss_sum(tape, batch).scale(1.0 / n)
    }

    /// Like [`nll_loss`](Self::nll_loss) but summed over the batch instead
    /// of averaged.
    ///
    /// This is the micro-batch form used by the data-parallel trainer:
    /// per-shard sums reduce by plain addition, and the trainer applies the
    /// `1/N` normalization once after its deterministic fixed-order
    /// reduction, so the normalization never depends on how the batch was
    /// sharded.
    pub fn nll_loss_sum(&self, tape: &Tape, batch: &Tensor) -> Var {
        assert_eq!(
            batch.cols(),
            self.dim(),
            "batch width must equal flow dimension"
        );
        let n = batch.rows() as f32;
        let mut z = tape.constant(batch.clone());
        let mut total_log_det: Option<Var> = None;
        for coupling in &self.couplings {
            let (next, log_det_elems) = coupling.forward_var(tape, &z);
            z = next;
            let ld_sum = log_det_elems.sum();
            total_log_det = Some(match total_log_det {
                Some(acc) => acc.add(&ld_sum),
                None => ld_sum,
            });
        }
        // -log p_z(z) summed over the batch: 0.5 * Σ z² + N·D/2 · ln(2π).
        let neg_log_prior = z
            .square()
            .sum()
            .scale(0.5)
            .add_scalar(n * self.dim() as f32 * 0.5 * LN_2PI);
        let total_log_det = total_log_det.expect("flow has at least one coupling layer");
        neg_log_prior.sub(&total_log_det)
    }

    /// Computes the summed NLL of `batch` and its parameter gradients on a
    /// private tape, detached from the shared gradient storage.
    ///
    /// One call is one gradient-worker work unit: workers call this
    /// concurrently on disjoint micro-batches and the trainer merges the
    /// returned batches in micro-batch order (see the `train` module docs).
    pub fn nll_grad_sum(&self, batch: &Tensor) -> (f32, GradBatch) {
        let tape = Tape::new();
        let loss = self.nll_loss_sum(&tape, batch);
        let value = loss.value().get(0, 0);
        (value, loss.backward_grads())
    }

    /// Average negative log-likelihood of a batch, computed without autograd
    /// (for validation/reporting).
    pub fn nll(&self, batch: &Tensor) -> f32 {
        let log_probs = self.log_prob(batch);
        -log_probs.iter().sum::<f32>() / log_probs.len() as f32
    }

    // ------------------------------------------------------------------
    // Weight snapshots
    // ------------------------------------------------------------------

    /// Returns the flow's inference snapshot (see [`FlowSnapshot`]),
    /// exporting the weights at most once between weight mutations.
    ///
    /// The snapshot is cached behind version stamps: any `set_value` /
    /// optimizer update to a parameter invalidates it, so callers always
    /// observe current weights while steady-state inference pays the export
    /// cost once per chunk/epoch instead of one lock + clone per layer call.
    pub fn snapshot(&self) -> Arc<FlowSnapshot> {
        {
            let cached = self.snapshot_cache.0.read();
            if let Some(snapshot) = cached.as_ref() {
                if snapshot.is_current() {
                    return Arc::clone(snapshot);
                }
            }
        }
        let fresh = Arc::new(FlowSnapshot::new(
            self.couplings.iter().map(CouplingLayer::snapshot).collect(),
            self.parameters(),
        ));
        *self.snapshot_cache.0.write() = Some(Arc::clone(&fresh));
        fresh
    }

    /// Applies the inverse flow into `out` using a caller-managed snapshot
    /// and workspace — the allocation-free form of [`inverse`](Self::inverse)
    /// used by the attack engine's chunk loop.
    pub fn inverse_into(&self, z: &Tensor, ws: &mut FlowWorkspace, out: &mut Tensor) {
        self.snapshot().inverse_into(z, ws, out);
    }

    /// Copies all parameter values into a flat list (for checkpointing).
    pub fn weight_snapshot(&self) -> Vec<Tensor> {
        self.parameters().iter().map(Parameter::value).collect()
    }

    /// Restores parameter values from a snapshot produced by
    /// [`weight_snapshot`](Self::weight_snapshot).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::IncompatibleWeights`] if the snapshot has the
    /// wrong number of tensors or mismatched shapes.
    pub fn load_weights(&self, snapshot: &[Tensor]) -> Result<()> {
        let params = self.parameters();
        if params.len() != snapshot.len() {
            return Err(FlowError::IncompatibleWeights(format!(
                "expected {} tensors, got {}",
                params.len(),
                snapshot.len()
            )));
        }
        for (p, w) in params.iter().zip(snapshot.iter()) {
            if p.value().shape() != w.shape() {
                return Err(FlowError::IncompatibleWeights(format!(
                    "shape mismatch for {}: {:?} vs {:?}",
                    p.name(),
                    p.value().shape(),
                    w.shape()
                )));
            }
            p.set_value(w.clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;

    fn tiny_flow(seed: u64) -> PassFlow {
        let mut rng = nnrng::seeded(seed);
        PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn construction_respects_config() {
        let flow = tiny_flow(1);
        assert_eq!(flow.dim(), 10);
        assert_eq!(flow.config().coupling_layers, 4);
        assert!(flow.num_parameters() > 0);
        assert_eq!(
            flow.parameters().len(),
            4 * flow.couplings[0].parameters().len()
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut rng = nnrng::seeded(1);
        let bad = FlowConfig::tiny().with_coupling_layers(3);
        assert!(matches!(
            PassFlow::new(bad, &mut rng),
            Err(FlowError::InvalidConfig(_))
        ));
    }

    #[test]
    fn mismatched_encoder_is_rejected() {
        let mut rng = nnrng::seeded(1);
        let encoder = PasswordEncoder::new(passflow_passwords::Alphabet::default(), 8);
        assert!(PassFlow::with_encoder(FlowConfig::tiny(), encoder, &mut rng).is_err());
    }

    #[test]
    fn forward_inverse_round_trip_on_passwords() {
        let flow = tiny_flow(2);
        let passwords = vec![
            "jimmy91".to_string(),
            "123456".to_string(),
            "iloveyou".to_string(),
        ];
        let x = flow.encode_batch(&passwords).unwrap();
        let (z, log_det) = flow.forward(&x);
        assert_eq!(z.shape(), (3, 10));
        assert_eq!(log_det.shape(), (3, 1));
        let recovered = flow.inverse(&z);
        assert!(
            recovered.approx_eq(&x, 1e-3),
            "max err {}",
            recovered.sub(&x).abs().max()
        );
        // Decoding the recovered features gives back the original passwords.
        assert_eq!(flow.decode_batch(&recovered), passwords);
    }

    #[test]
    fn latent_round_trip_from_prior_side() {
        let flow = tiny_flow(3);
        let mut rng = nnrng::seeded(4);
        let z = flow.sample_latent(5, &mut rng);
        let x = flow.inverse(&z);
        let (z2, _) = flow.forward(&x);
        assert!(z2.approx_eq(&z, 1e-3));
    }

    #[test]
    fn log_prob_is_finite_and_consistent_with_nll() {
        let flow = tiny_flow(5);
        let passwords = vec!["password".to_string(), "qwerty12".to_string()];
        let x = flow.encode_batch(&passwords).unwrap();
        let lps = flow.log_prob(&x);
        assert!(lps.iter().all(|v| v.is_finite()));
        let nll = flow.nll(&x);
        let mean_lp = lps.iter().sum::<f32>() / lps.len() as f32;
        assert!((nll + mean_lp).abs() < 1e-4);
    }

    #[test]
    fn log_prob_password_matches_batch_log_prob() {
        let flow = tiny_flow(6);
        let single = flow.log_prob_password("jimmy91").unwrap();
        let x = flow.encode_batch(&["jimmy91".to_string()]).unwrap();
        let batch = flow.log_prob(&x)[0];
        assert!((single - batch).abs() < 1e-5);
        assert!(flow.log_prob_password("waytoolongpassword").is_none());
    }

    #[test]
    fn nll_loss_var_matches_tensor_nll() {
        let flow = tiny_flow(7);
        let x = flow
            .encode_batch(&["monkey12".to_string(), "dragon".to_string()])
            .unwrap();
        let tape = Tape::new();
        let loss = flow.nll_loss(&tape, &x).value().get(0, 0);
        let reference = flow.nll(&x);
        assert!(
            (loss - reference).abs() < 1e-3,
            "taped {loss} vs tensor {reference}"
        );
    }

    #[test]
    fn nll_grad_sum_matches_taped_backward() {
        let flow = tiny_flow(21);
        let x = flow
            .encode_batch(&["monkey12".to_string(), "dragon".to_string()])
            .unwrap();

        // Reference: shared-accumulation backward through nll_loss_sum.
        let tape = Tape::new();
        let loss = flow.nll_loss_sum(&tape, &x);
        let reference_value = loss.value().get(0, 0);
        loss.backward();

        let (value, grads) = flow.nll_grad_sum(&x);
        assert_eq!(value.to_bits(), reference_value.to_bits());
        for p in flow.parameters() {
            let detached = grads.get(&p).expect("gradient for every parameter");
            assert_eq!(detached.as_slice(), p.grad().as_slice(), "{}", p.name());
            p.zero_grad();
        }
        // nll_loss is exactly the sum scaled by 1/n.
        let tape = Tape::new();
        let mean = flow.nll_loss(&tape, &x).value().get(0, 0);
        assert!((mean - value / 2.0).abs() < 1e-4);
    }

    #[test]
    fn sampling_produces_decodable_passwords() {
        let flow = tiny_flow(8);
        let mut rng = nnrng::seeded(9);
        let guesses = flow.sample_passwords(20, &mut rng);
        assert_eq!(guesses.len(), 20);
        // All guesses must be encodable strings over the alphabet with the
        // flow's maximum length.
        for g in &guesses {
            assert!(g.chars().count() <= 10);
            assert!(flow.encoder().can_encode(g), "unencodable guess {g:?}");
        }
    }

    #[test]
    fn sample_near_stays_close_for_small_sigma() {
        let flow = tiny_flow(10);
        let mut rng = nnrng::seeded(11);
        let near = flow.sample_near("jimmy91", 1e-4, 10, &mut rng).unwrap();
        // With a tiny sigma every neighbour decodes to the pivot itself.
        assert!(near.iter().all(|p| p == "jimmy91"), "{near:?}");
        assert!(flow
            .sample_near("waytoolongpassword", 0.1, 1, &mut rng)
            .is_err());
    }

    #[test]
    fn latent_of_is_deterministic() {
        let flow = tiny_flow(12);
        let a = flow.latent_of("sunshine1").unwrap();
        let b = flow.latent_of("sunshine1").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn weight_snapshot_round_trips() {
        let flow = tiny_flow(13);
        let snapshot = flow.weight_snapshot();
        let original_lp = flow.log_prob_password("charlie7").unwrap();

        // Perturb all weights, check the density changes, then restore.
        for p in flow.parameters() {
            p.set_value(p.value().add_scalar(0.05));
        }
        let perturbed_lp = flow.log_prob_password("charlie7").unwrap();
        assert!((original_lp - perturbed_lp).abs() > 1e-6);

        flow.load_weights(&snapshot).unwrap();
        let restored_lp = flow.log_prob_password("charlie7").unwrap();
        assert!((original_lp - restored_lp).abs() < 1e-6);
    }

    #[test]
    fn load_weights_validates_shapes() {
        let flow = tiny_flow(14);
        assert!(matches!(
            flow.load_weights(&[]),
            Err(FlowError::IncompatibleWeights(_))
        ));
        let mut wrong = flow.weight_snapshot();
        wrong[0] = Tensor::zeros(1, 1);
        assert!(flow.load_weights(&wrong).is_err());
    }

    #[test]
    fn encode_batch_skips_unencodable_and_errors_when_empty() {
        let flow = tiny_flow(15);
        let mixed = vec!["ok".to_string(), "definitelytoolong".to_string()];
        let x = flow.encode_batch(&mixed).unwrap();
        assert_eq!(x.rows(), 1);
        let all_bad = vec!["definitelytoolong".to_string()];
        assert!(matches!(
            flow.encode_batch(&all_bad),
            Err(FlowError::EmptyTrainingSet)
        ));
    }
}
